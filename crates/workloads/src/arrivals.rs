//! Open-loop arrival generators for the storage-server experiments.
//!
//! Closed-loop figures keep a fixed number of requests in flight, so the
//! drive never sees a queue deeper than the thinktime allows; the paper's
//! service-time predictability argument only bites under an *open-loop*
//! arrival process, where requests keep arriving whether or not the drive
//! is keeping up. This module generates such processes as plain
//! [`TraceRecord`] vectors — the PR 6 replay format — so the same traces
//! feed the server loop, the replay driver, and on-disk `.trc` files
//! interchangeably:
//!
//! * [`poisson_trace`] — memoryless arrivals at a fixed rate, the
//!   baseline M/G/1-style offered load;
//! * [`bursty_trace`] — an ON/OFF modulated Poisson process with
//!   exponentially distributed dwell times, for traffic with long-range
//!   burstiness;
//! * [`diurnal_trace`] — several tenants with sinusoidally modulated
//!   rates and disjoint address regions, a daily-cycle multi-tenant mix;
//! * [`ramp_trace`] — a linearly increasing arrival rate, for driving a
//!   server from idle through its saturation knee in one run (the
//!   timeline telemetry's natural test signal);
//! * [`stream_trace`] — N concurrent video-style clients issuing
//!   sequential track-aligned chunk reads/writes on a fixed period, the
//!   track-aligned workload where the traxtent scheduler should win.
//!
//! All arrival instants are quantized to whole microseconds so generated
//! traces survive a [`render_trace`](crate::replay::render_trace) /
//! [`parse_trace`](crate::replay::parse_trace) round trip bit-exactly
//! (the text format carries milliseconds with three decimals). Every
//! generator is a pure function of its spec — same spec, same trace, on
//! any machine.

use crate::replay::TraceRecord;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sim_disk::disk::{Op, Request};
use sim_disk::SimTime;
use traxtent::TrackBoundaries;

/// Golden-ratio increment used to derive independent per-purpose RNG
/// streams from one user-facing seed.
const SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Draws an exponential interarrival gap at `rate_per_sec`, rounded to a
/// whole number of microseconds and returned in nanoseconds.
fn exp_gap_ns(rng: &mut StdRng, rate_per_sec: f64) -> u64 {
    let u: f64 = rng.gen();
    let dt_s = -(1.0 - u).ln() / rate_per_sec;
    ((dt_s * 1e6).round() as u64).saturating_mul(1000)
}

/// Draws a request start uniformly so `io_sectors` fits below `capacity`.
fn draw_lbn(rng: &mut StdRng, capacity_lbns: u64, io_sectors: u64) -> u64 {
    assert!(
        capacity_lbns > io_sectors,
        "capacity too small for the request size"
    );
    rng.gen_range(0..capacity_lbns - io_sectors)
}

/// Draws read vs write with the given read probability.
fn draw_op(rng: &mut StdRng, read_fraction: f64) -> Op {
    if rng.gen::<f64>() < read_fraction {
        Op::Read
    } else {
        Op::Write
    }
}

/// Spec for [`poisson_trace`]: memoryless arrivals at a fixed rate.
#[derive(Debug, Clone)]
pub struct PoissonSpec {
    /// Mean arrival rate, requests per second of simulated time.
    pub rate_per_sec: f64,
    /// Number of requests to generate.
    pub count: usize,
    /// Drive capacity; request starts are uniform below it.
    pub capacity_lbns: u64,
    /// Sectors per request.
    pub io_sectors: u64,
    /// Probability a request is a read.
    pub read_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Generates a Poisson arrival process: i.i.d. exponential interarrival
/// gaps with mean `1 / rate_per_sec`, uniformly random request starts.
pub fn poisson_trace(spec: &PoissonSpec) -> Vec<TraceRecord> {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut records = Vec::with_capacity(spec.count);
    let mut t_ns = 0u64;
    for _ in 0..spec.count {
        t_ns += exp_gap_ns(&mut rng, spec.rate_per_sec);
        let lbn = draw_lbn(&mut rng, spec.capacity_lbns, spec.io_sectors);
        let op = draw_op(&mut rng, spec.read_fraction);
        records.push(TraceRecord {
            arrival: SimTime::from_ns(t_ns),
            request: Request::new(op, lbn, spec.io_sectors),
        });
    }
    records
}

/// Spec for [`bursty_trace`]: an ON/OFF modulated Poisson process.
///
/// The source alternates between ON dwells (arrivals at `rate_per_sec`)
/// and OFF dwells (silence); both dwell lengths are exponentially
/// distributed with the configured means, so the long-run fraction of
/// time spent ON is `mean_on_ms / (mean_on_ms + mean_off_ms)`.
#[derive(Debug, Clone)]
pub struct BurstySpec {
    /// Arrival rate while ON, requests per second.
    pub rate_per_sec: f64,
    /// Mean ON dwell, milliseconds.
    pub mean_on_ms: f64,
    /// Mean OFF dwell, milliseconds.
    pub mean_off_ms: f64,
    /// Number of requests to generate.
    pub count: usize,
    /// Drive capacity; request starts are uniform below it.
    pub capacity_lbns: u64,
    /// Sectors per request.
    pub io_sectors: u64,
    /// Probability a request is a read.
    pub read_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl BurstySpec {
    /// The first `n` ON windows as `(start, end)` instants.
    ///
    /// Dwells come from a dedicated RNG stream derived from the seed, so
    /// the window sequence is independent of how many arrivals land in
    /// each window — [`bursty_trace`] walks this exact sequence, which is
    /// what lets tests check that every arrival falls inside an ON window
    /// and that realized dwell fractions match the configured means.
    pub fn windows(&self, n: usize) -> Vec<(SimTime, SimTime)> {
        let mut dwell = StdRng::seed_from_u64(self.seed.wrapping_add(SEED_STRIDE));
        let mut out = Vec::with_capacity(n);
        let mut t = 0u64;
        for _ in 0..n {
            let on = exp_gap_ns(&mut dwell, 1000.0 / self.mean_on_ms);
            let off = exp_gap_ns(&mut dwell, 1000.0 / self.mean_off_ms);
            out.push((SimTime::from_ns(t), SimTime::from_ns(t + on)));
            t += on + off;
        }
        out
    }
}

/// Generates an ON/OFF burst process per [`BurstySpec`].
///
/// Arrivals are drawn at the ON rate inside each window; a draw that
/// lands past the window end is discarded and the next window starts
/// fresh (the exponential is memoryless, so this does not bias the
/// within-window process).
pub fn bursty_trace(spec: &BurstySpec) -> Vec<TraceRecord> {
    let mut dwell = StdRng::seed_from_u64(spec.seed.wrapping_add(SEED_STRIDE));
    let mut arr = StdRng::seed_from_u64(spec.seed);
    let mut records = Vec::with_capacity(spec.count);
    let mut win_start = 0u64;
    while records.len() < spec.count {
        let on = exp_gap_ns(&mut dwell, 1000.0 / spec.mean_on_ms);
        let off = exp_gap_ns(&mut dwell, 1000.0 / spec.mean_off_ms);
        let win_end = win_start + on;
        let mut t = win_start;
        loop {
            t += exp_gap_ns(&mut arr, spec.rate_per_sec);
            if t >= win_end || records.len() == spec.count {
                break;
            }
            let lbn = draw_lbn(&mut arr, spec.capacity_lbns, spec.io_sectors);
            let op = draw_op(&mut arr, spec.read_fraction);
            records.push(TraceRecord {
                arrival: SimTime::from_ns(t),
                request: Request::new(op, lbn, spec.io_sectors),
            });
        }
        win_start = win_end + off;
    }
    records
}

/// One tenant in a [`DiurnalSpec`] mix.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Peak arrival rate, requests per second (the sinusoid's crest).
    pub peak_rate_per_sec: f64,
    /// Phase offset as a fraction of the period in `[0, 1)`; tenants with
    /// different phases peak at different "times of day".
    pub phase: f64,
    /// First LBN of this tenant's address region.
    pub first_lbn: u64,
    /// Length of the region in LBNs; request starts stay inside it.
    pub span_lbns: u64,
    /// Sectors per request.
    pub io_sectors: u64,
    /// Probability a request is a read.
    pub read_fraction: f64,
}

/// Spec for [`diurnal_trace`]: tenants with sinusoidally modulated rates.
#[derive(Debug, Clone)]
pub struct DiurnalSpec {
    /// The tenant mix.
    pub tenants: Vec<TenantSpec>,
    /// Modulation period, milliseconds (a scaled-down "day").
    pub period_ms: f64,
    /// Trace length, milliseconds.
    pub duration_ms: f64,
    /// RNG seed; each tenant derives an independent stream from it.
    pub seed: u64,
}

/// Generates a multi-tenant diurnal mix per [`DiurnalSpec`].
///
/// Each tenant is a non-homogeneous Poisson process with instantaneous
/// rate `peak · (1 + sin(2π(t/period + phase))) / 2`, realized by
/// thinning a homogeneous process at the peak rate. Tenant streams are
/// generated independently and stably merged by arrival time.
pub fn diurnal_trace(spec: &DiurnalSpec) -> Vec<TraceRecord> {
    let dur_ns = (spec.duration_ms * 1e6) as u64;
    let period_ns = spec.period_ms * 1e6;
    let mut records = Vec::new();
    for (i, tenant) in spec.tenants.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(
            spec.seed
                .wrapping_add(SEED_STRIDE.wrapping_mul(i as u64 + 1)),
        );
        let mut t_ns = 0u64;
        loop {
            t_ns += exp_gap_ns(&mut rng, tenant.peak_rate_per_sec);
            if t_ns > dur_ns {
                break;
            }
            let cycle = t_ns as f64 / period_ns + tenant.phase;
            let accept = 0.5 * (1.0 + (cycle * std::f64::consts::TAU).sin());
            if rng.gen::<f64>() >= accept {
                continue;
            }
            assert!(
                tenant.span_lbns > tenant.io_sectors,
                "tenant region too small for the request size"
            );
            let off = rng.gen_range(0..tenant.span_lbns - tenant.io_sectors);
            let op = draw_op(&mut rng, tenant.read_fraction);
            records.push(TraceRecord {
                arrival: SimTime::from_ns(t_ns),
                request: Request::new(op, tenant.first_lbn + off, tenant.io_sectors),
            });
        }
    }
    records.sort_by_key(|r| r.arrival);
    records
}

/// Spec for [`ramp_trace`]: a linearly ramping arrival rate.
#[derive(Debug, Clone)]
pub struct RampSpec {
    /// Arrival rate at t = 0, requests per second.
    pub start_rate_per_sec: f64,
    /// Arrival rate at `duration_ms`, requests per second.
    pub end_rate_per_sec: f64,
    /// Trace length, milliseconds.
    pub duration_ms: f64,
    /// Drive capacity; request starts are uniform below it.
    pub capacity_lbns: u64,
    /// Sectors per request.
    pub io_sectors: u64,
    /// Probability a request is a read.
    pub read_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Generates a linearly ramping Poisson process per [`RampSpec`].
///
/// The instantaneous rate interpolates from `start_rate_per_sec` to
/// `end_rate_per_sec` across the duration, realized by thinning a
/// homogeneous process at the faster of the two endpoint rates (so the
/// ramp may also descend). One run walks the server from an idle queue
/// through its saturation knee — the signal the windowed timeline
/// sampler and SLO burn-rate monitor are built to resolve.
pub fn ramp_trace(spec: &RampSpec) -> Vec<TraceRecord> {
    assert!(
        spec.start_rate_per_sec > 0.0 && spec.end_rate_per_sec > 0.0,
        "ramp endpoint rates must be positive"
    );
    let peak = spec.start_rate_per_sec.max(spec.end_rate_per_sec);
    let dur_ns = (spec.duration_ms * 1e6) as u64;
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut records = Vec::new();
    let mut t_ns = 0u64;
    loop {
        t_ns += exp_gap_ns(&mut rng, peak);
        if t_ns > dur_ns {
            break;
        }
        let frac = t_ns as f64 / dur_ns as f64;
        let rate =
            spec.start_rate_per_sec + frac * (spec.end_rate_per_sec - spec.start_rate_per_sec);
        if rng.gen::<f64>() >= rate / peak {
            continue;
        }
        let lbn = draw_lbn(&mut rng, spec.capacity_lbns, spec.io_sectors);
        let op = draw_op(&mut rng, spec.read_fraction);
        records.push(TraceRecord {
            arrival: SimTime::from_ns(t_ns),
            request: Request::new(op, lbn, spec.io_sectors),
        });
    }
    records
}

/// Spec for [`stream_trace`]: N concurrent sequential-stream clients.
#[derive(Debug, Clone)]
pub struct StreamsSpec {
    /// Number of playback clients (sequential chunk reads).
    pub read_streams: usize,
    /// Number of ingest clients (sequential chunk writes).
    pub write_streams: usize,
    /// Nominal chunk length in sectors; the last chunk of a track is
    /// clipped so no request ever crosses a track boundary.
    pub chunk_sectors: u64,
    /// Per-stream inter-chunk period, milliseconds (isochronous clients).
    pub chunk_period_ms: f64,
    /// Chunks each stream issues.
    pub chunks_per_stream: usize,
    /// RNG seed; picks each stream's starting track and phase.
    pub seed: u64,
}

/// Generates N concurrent video-style client streams per [`StreamsSpec`].
///
/// Each stream starts at the first LBN of a uniformly random track of
/// `table` and walks forward sequentially in `chunk_sectors` pieces,
/// clipping the last piece of each track to the boundary (requests are
/// track-aligned by construction) and wrapping from the last track to the
/// first. Chunk `k` of a stream arrives at `phase + k · period` where the
/// phase is uniform in one period, so the merged trace interleaves all
/// clients. Streams are stably merged by arrival time.
pub fn stream_trace(spec: &StreamsSpec, table: &TrackBoundaries) -> Vec<TraceRecord> {
    assert!(spec.chunk_sectors > 0, "chunk length must be positive");
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let streams = spec.read_streams + spec.write_streams;
    let period_us = (spec.chunk_period_ms * 1e3).round() as u64;
    let mut records = Vec::with_capacity(streams * spec.chunks_per_stream);
    for s in 0..streams {
        let op = if s < spec.read_streams {
            Op::Read
        } else {
            Op::Write
        };
        let track = rng.gen_range(0..table.num_tracks());
        let mut pos = table.track_extent(track).start;
        let phase_ns = rng.gen_range(0..period_us.max(1)) * 1000;
        for k in 0..spec.chunks_per_stream {
            let (_, track_end) = table.track_bounds(pos);
            let len = spec.chunk_sectors.min(track_end - pos);
            records.push(TraceRecord {
                arrival: SimTime::from_ns(phase_ns + k as u64 * period_us * 1000),
                request: Request::new(op, pos, len),
            });
            pos += len;
            if pos >= table.capacity() {
                pos = 0;
            }
        }
    }
    records.sort_by_key(|r| r.arrival);
    records
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::{parse_trace, render_trace};

    fn poisson_spec() -> PoissonSpec {
        PoissonSpec {
            rate_per_sec: 200.0,
            count: 4000,
            capacity_lbns: 1_000_000,
            io_sectors: 64,
            read_fraction: 0.7,
            seed: 7,
        }
    }

    #[test]
    fn poisson_interarrival_mean_tracks_rate() {
        let spec = poisson_spec();
        let trace = poisson_trace(&spec);
        assert_eq!(trace.len(), spec.count);
        let gaps: Vec<f64> = trace
            .windows(2)
            .map(|w| w[1].arrival.since(w[0].arrival).as_millis_f64())
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let expect = 1000.0 / spec.rate_per_sec;
        assert!(
            (mean - expect).abs() / expect < 0.05,
            "mean interarrival {mean:.3} ms, expected ~{expect:.3} ms"
        );
    }

    #[test]
    fn poisson_arrivals_are_sorted_and_quantized() {
        let trace = poisson_trace(&poisson_spec());
        for w in trace.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        for r in &trace {
            assert_eq!(r.arrival.as_ns() % 1000, 0, "arrivals are µs-quantized");
        }
    }

    fn bursty_spec() -> BurstySpec {
        BurstySpec {
            rate_per_sec: 500.0,
            mean_on_ms: 40.0,
            mean_off_ms: 60.0,
            count: 3000,
            capacity_lbns: 1_000_000,
            io_sectors: 64,
            read_fraction: 0.5,
            seed: 11,
        }
    }

    #[test]
    fn bursty_dwell_fractions_match_config() {
        let spec = bursty_spec();
        let windows = spec.windows(500);
        let on: f64 = windows
            .iter()
            .map(|(s, e)| e.since(*s).as_millis_f64())
            .sum();
        // Span to the last ON edge: every counted window contributes its
        // full ON dwell and all but the last its OFF dwell, so the ratio
        // converges on the configured dwell fractions.
        let total = windows.last().unwrap().1.as_millis_f64();
        let frac = on / total;
        let expect = spec.mean_on_ms / (spec.mean_on_ms + spec.mean_off_ms);
        assert!(
            (frac - expect).abs() < 0.05,
            "ON fraction {frac:.3}, expected ~{expect:.3}"
        );
    }

    #[test]
    fn bursty_arrivals_fall_inside_on_windows() {
        let spec = bursty_spec();
        let trace = bursty_trace(&spec);
        assert_eq!(trace.len(), spec.count);
        let windows = spec.windows(100_000);
        let mut w = 0;
        for r in &trace {
            while r.arrival >= windows[w].1 {
                w += 1;
            }
            assert!(
                r.arrival >= windows[w].0 && r.arrival < windows[w].1,
                "arrival {} ms outside ON window",
                r.arrival.as_millis_f64()
            );
        }
    }

    #[test]
    fn diurnal_tenants_stay_in_their_regions() {
        let spec = DiurnalSpec {
            tenants: vec![
                TenantSpec {
                    peak_rate_per_sec: 300.0,
                    phase: 0.0,
                    first_lbn: 0,
                    span_lbns: 100_000,
                    io_sectors: 32,
                    read_fraction: 1.0,
                },
                TenantSpec {
                    peak_rate_per_sec: 300.0,
                    phase: 0.5,
                    first_lbn: 500_000,
                    span_lbns: 100_000,
                    io_sectors: 128,
                    read_fraction: 0.0,
                },
            ],
            period_ms: 2000.0,
            duration_ms: 4000.0,
            seed: 3,
        };
        let trace = diurnal_trace(&spec);
        assert!(!trace.is_empty());
        for w in trace.windows(2) {
            assert!(w[0].arrival <= w[1].arrival, "merged trace is sorted");
        }
        for r in &trace {
            let in_a = r.request.lbn < 100_000 && r.request.len == 32;
            let in_b = (500_000..600_000).contains(&r.request.lbn) && r.request.len == 128;
            assert!(in_a || in_b, "request belongs to exactly one tenant region");
        }
        // Antiphase tenants: tenant A's first-half-period share of its own
        // arrivals should exceed tenant B's (B peaks in the second half).
        let half = SimTime::from_ns(1_000 * 1_000_000);
        let in_cycle = |r: &TraceRecord| r.arrival.as_ns() % 2_000_000_000 < half.as_ns();
        let a: Vec<_> = trace.iter().filter(|r| r.request.len == 32).collect();
        let b: Vec<_> = trace.iter().filter(|r| r.request.len == 128).collect();
        let a_frac = a.iter().filter(|r| in_cycle(r)).count() as f64 / a.len() as f64;
        let b_frac = b.iter().filter(|r| in_cycle(r)).count() as f64 / b.len() as f64;
        assert!(
            a_frac > b_frac + 0.2,
            "phase separation visible: A={a_frac:.2} vs B={b_frac:.2}"
        );
    }

    #[test]
    fn ramp_rate_rises_across_the_run() {
        let spec = RampSpec {
            start_rate_per_sec: 50.0,
            end_rate_per_sec: 450.0,
            duration_ms: 8000.0,
            capacity_lbns: 1_000_000,
            io_sectors: 64,
            read_fraction: 0.6,
            seed: 13,
        };
        let trace = ramp_trace(&spec);
        assert!(!trace.is_empty());
        for w in trace.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
        for r in &trace {
            assert_eq!(r.arrival.as_ns() % 1000, 0, "arrivals are µs-quantized");
        }
        // Realized counts per half track the rate integral: the second
        // half's mean rate (350/s) is 2.33× the first half's (150/s).
        let half = SimTime::from_ns(4_000 * 1_000_000);
        let first = trace.iter().filter(|r| r.arrival < half).count() as f64;
        let second = trace.len() as f64 - first;
        let ratio = second / first;
        assert!(
            (ratio - 350.0 / 150.0).abs() < 0.35,
            "half-to-half ratio {ratio:.2}, expected ~2.33"
        );
        // A descending ramp works too and lands near its own integral.
        let down = ramp_trace(&RampSpec {
            start_rate_per_sec: 450.0,
            end_rate_per_sec: 50.0,
            ..spec
        });
        let expect = 250.0 * 8.0; // mean rate × seconds
        assert!(
            (down.len() as f64 - expect).abs() / expect < 0.1,
            "descending ramp generated {} arrivals, expected ~{expect}",
            down.len()
        );
    }

    #[test]
    fn stream_chunks_never_cross_track_boundaries() {
        let table = TrackBoundaries::from_track_lengths((0..64).map(|i| 100 + i % 7)).unwrap();
        let spec = StreamsSpec {
            read_streams: 4,
            write_streams: 2,
            chunk_sectors: 48,
            chunk_period_ms: 12.0,
            chunks_per_stream: 200,
            seed: 9,
        };
        let trace = stream_trace(&spec, &table);
        assert_eq!(trace.len(), 6 * 200);
        for r in &trace {
            let (start, end) = table.track_bounds(r.request.lbn);
            assert!(r.request.lbn >= start && r.request.lbn + r.request.len <= end);
        }
        for w in trace.windows(2) {
            assert!(w[0].arrival <= w[1].arrival);
        }
    }

    #[test]
    fn generated_traces_round_trip_through_replay() {
        let table = TrackBoundaries::uniform(128, 400);
        let traces = [
            poisson_trace(&poisson_spec()),
            bursty_trace(&bursty_spec()),
            stream_trace(
                &StreamsSpec {
                    read_streams: 3,
                    write_streams: 1,
                    chunk_sectors: 100,
                    chunk_period_ms: 8.0,
                    chunks_per_stream: 50,
                    seed: 21,
                },
                &table,
            ),
        ];
        for trace in &traces {
            let parsed = parse_trace(&render_trace(trace)).expect("round trip parses");
            assert_eq!(&parsed, trace, "render → parse is lossless");
        }
    }
}
