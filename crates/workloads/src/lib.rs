//! Workload generators for the traxtent evaluation.
//!
//! * [`microbench`] — the paper's `onereq` / `tworeq` random-request
//!   workloads over a single zone (Figures 1, 6, 7, 8 and the §5.2 write
//!   results);
//! * [`apps`] — application-level workloads on the FFS prototype (Table 2):
//!   large-file scan / diff / copy, a Postmark-like small-file transaction
//!   mix, an SSH-build-like phase mix, and `head*`;
//! * [`replay`] — timestamped block-trace replay through the batched
//!   service API, the engine-throughput workload;
//! * [`arrivals`] — open-loop arrival generators (Poisson, bursty ON/OFF,
//!   diurnal tenant mixes, concurrent video-style streams) emitting
//!   [`replay`]-format traces for the storage-server experiments.

#![warn(missing_docs)]

pub mod apps;
pub mod arrivals;
pub mod microbench;
pub mod replay;
