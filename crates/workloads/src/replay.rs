//! Block-level trace replay: the engine-throughput workload.
//!
//! Feeds a timestamped request stream — parsed from a trace file or
//! generated synthetically — through [`Disk::service_batch_into`] and
//! reports both simulation results (response times, simulated span) and
//! the replay rate itself (requests simulated per wall-clock second),
//! which is the headline number for the event-driven engine rework.
//!
//! # Trace format
//!
//! One request per line, whitespace-separated:
//!
//! ```text
//! <arrival_ms> <R|W> <lbn> <sectors>
//! ```
//!
//! * `arrival_ms` — request arrival time in milliseconds since trace
//!   start, a non-negative decimal; lines must be sorted by arrival;
//! * `R`/`W` — read or write (lowercase accepted);
//! * `lbn` — first logical block, decimal;
//! * `sectors` — request length in sectors, decimal, positive.
//!
//! Blank lines and lines starting with `#` are skipped. This is the same
//! shape as the ASCII traces distributed with DiskSim-era tooling, kept
//! deliberately minimal so real traces convert with one `awk` line.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sim_disk::disk::{Disk, Op, Request};
use sim_disk::{Completion, SimDur, SimTime};
use std::error::Error;
use std::fmt;
use traxtent::stats;

/// One timestamped request from a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Arrival time relative to trace start.
    pub arrival: SimTime,
    /// The block-level request.
    pub request: Request,
}

/// What was wrong with a trace line (see [`ParseError`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseErrorKind {
    /// A required field was absent; carries the field name.
    MissingField(&'static str),
    /// A field did not parse as its expected type; carries the field name.
    BadField(&'static str),
    /// `arrival_ms` was negative, NaN, or infinite.
    NegativeArrival,
    /// The op column was neither `R` nor `W`; carries the offending token.
    BadOp(String),
    /// `sectors` was zero.
    ZeroSectors,
    /// Extra fields after `sectors`.
    TrailingFields,
    /// The line's arrival precedes its predecessor's.
    NonMonotoneArrival,
}

/// A typed trace-parse failure naming the offending line (1-based).
///
/// [`fmt::Display`] renders the same `line N: reason` text the parser has
/// always produced, so error messages stay stable; callers that need to
/// react programmatically match on [`ParseError::kind`] instead of
/// grepping strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong with it.
    pub kind: ParseErrorKind,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            ParseErrorKind::MissingField(name) => write!(f, "missing {name}"),
            ParseErrorKind::BadField("arrival_ms") => write!(f, "arrival_ms is not a number"),
            ParseErrorKind::BadField(name) => write!(f, "{name} is not an integer"),
            ParseErrorKind::NegativeArrival => write!(f, "arrival_ms must be non-negative"),
            ParseErrorKind::BadOp(tok) => write!(f, "op must be R or W, got `{tok}`"),
            ParseErrorKind::ZeroSectors => write!(f, "sectors must be positive"),
            ParseErrorKind::TrailingFields => write!(f, "trailing fields"),
            ParseErrorKind::NonMonotoneArrival => write!(f, "arrivals must be sorted by time"),
        }
    }
}

impl Error for ParseError {}

/// Parses a trace in the module's line format.
///
/// Returns the records in file order. Errors name the offending line
/// (1-based) and what was wrong with it; an arrival time earlier than its
/// predecessor's is an error because [`Disk::service_batch_into`] requires
/// issue times in order.
pub fn parse_trace(text: &str) -> Result<Vec<TraceRecord>, ParseError> {
    let mut records = Vec::new();
    let mut last_arrival = SimTime::ZERO;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let err = |kind| ParseError { line: lineno, kind };
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let mut field = |name: &'static str| {
            fields.next().ok_or(ParseError {
                line: lineno,
                kind: ParseErrorKind::MissingField(name),
            })
        };
        let arrival_ms: f64 = field("arrival_ms")?
            .parse()
            .map_err(|_| err(ParseErrorKind::BadField("arrival_ms")))?;
        if !arrival_ms.is_finite() || arrival_ms < 0.0 {
            return Err(err(ParseErrorKind::NegativeArrival));
        }
        let op = match field("op")? {
            "R" | "r" => Op::Read,
            "W" | "w" => Op::Write,
            other => return Err(err(ParseErrorKind::BadOp(other.to_string()))),
        };
        let lbn: u64 = field("lbn")?
            .parse()
            .map_err(|_| err(ParseErrorKind::BadField("lbn")))?;
        let sectors: u64 = field("sectors")?
            .parse()
            .map_err(|_| err(ParseErrorKind::BadField("sectors")))?;
        if sectors == 0 {
            return Err(err(ParseErrorKind::ZeroSectors));
        }
        if fields.next().is_some() {
            return Err(err(ParseErrorKind::TrailingFields));
        }
        let arrival = SimTime::ZERO + SimDur::from_millis_f64(arrival_ms);
        if arrival < last_arrival {
            return Err(err(ParseErrorKind::NonMonotoneArrival));
        }
        last_arrival = arrival;
        records.push(TraceRecord {
            arrival,
            request: Request::new(op, lbn, sectors),
        });
    }
    Ok(records)
}

/// Renders records back into the line format [`parse_trace`] reads,
/// prefixed with a comment header. `parse_trace(&render_trace(&r))`
/// round-trips exactly for millisecond-quantized arrivals.
pub fn render_trace(records: &[TraceRecord]) -> String {
    let mut out = String::from("# <arrival_ms> <R|W> <lbn> <sectors>\n");
    for r in records {
        let op = match r.request.op {
            Op::Read => 'R',
            Op::Write => 'W',
        };
        out.push_str(&format!(
            "{:.3} {op} {} {}\n",
            r.arrival.as_millis_f64(),
            r.request.lbn,
            r.request.len
        ));
    }
    out
}

/// Parameters of the synthetic trace generator.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticSpec {
    /// Number of requests.
    pub count: usize,
    /// Capacity to draw start LBNs from (exclusive upper bound for
    /// `lbn + sectors`).
    pub capacity_lbns: u64,
    /// Request size, sectors.
    pub io_sectors: u64,
    /// Fraction of reads, in `[0, 1]`; the rest are writes.
    pub read_fraction: f64,
    /// Mean interarrival time, milliseconds (uniform on `[0, 2·mean]`).
    pub interarrival_ms: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SyntheticSpec {
    /// A read-mostly open workload sized for `capacity_lbns`: track-sized
    /// requests arriving slightly slower than the drive's random-access
    /// service rate (~13 ms), so the queue breathes but never diverges.
    pub fn default_for(capacity_lbns: u64, count: usize, seed: u64) -> Self {
        SyntheticSpec {
            count,
            capacity_lbns,
            io_sectors: 528,
            read_fraction: 0.8,
            interarrival_ms: 18.0,
            seed,
        }
    }
}

/// Generates a deterministic synthetic trace: uniform start LBNs, fixed
/// request size, uniform interarrivals with the given mean.
pub fn synthetic_trace(spec: &SyntheticSpec) -> Vec<TraceRecord> {
    assert!(
        spec.capacity_lbns > spec.io_sectors,
        "capacity too small for the request size"
    );
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut records = Vec::with_capacity(spec.count);
    let mut arrival_ns = 0u64;
    let span = spec.capacity_lbns - spec.io_sectors;
    for _ in 0..spec.count {
        arrival_ns += rng.gen_range(0..=(2e6 * spec.interarrival_ms) as u64);
        let lbn = rng.gen_range(0..span);
        let op = if rng.gen::<f64>() < spec.read_fraction {
            Op::Read
        } else {
            Op::Write
        };
        records.push(TraceRecord {
            arrival: SimTime::from_ns(arrival_ns),
            request: Request::new(op, lbn, spec.io_sectors),
        });
    }
    records
}

/// The measured outcome of a replay run.
#[derive(Debug, Clone)]
pub struct ReplayResult {
    /// Per-request completions, in trace order.
    pub completions: Vec<Completion>,
}

impl ReplayResult {
    /// Number of requests replayed.
    pub fn requests(&self) -> usize {
        self.completions.len()
    }

    /// Simulated span from the first arrival to the last completion.
    pub fn sim_span(&self) -> SimDur {
        match (self.completions.first(), self.completions.last()) {
            (Some(first), Some(_)) => {
                let end = self
                    .completions
                    .iter()
                    .map(|c| c.completion)
                    .fold(SimTime::ZERO, SimTime::max);
                end.since(first.issue)
            }
            _ => SimDur::ZERO,
        }
    }

    /// Mean response time, milliseconds.
    pub fn mean_response_ms(&self) -> f64 {
        let times: Vec<f64> = self
            .completions
            .iter()
            .map(|c| c.response_time().as_millis_f64())
            .collect();
        stats::mean(&times)
    }

    /// Worst response time, milliseconds.
    pub fn max_response_ms(&self) -> f64 {
        self.completions
            .iter()
            .map(|c| c.response_time().as_millis_f64())
            .fold(0.0, f64::max)
    }

    /// Fraction of reads serviced from the firmware cache.
    pub fn cache_hit_fraction(&self) -> f64 {
        let reads = self
            .completions
            .iter()
            .filter(|c| c.request.op == Op::Read)
            .count();
        if reads == 0 {
            return 0.0;
        }
        let hits = self.completions.iter().filter(|c| c.cache_hit).count();
        hits as f64 / reads as f64
    }

    /// Exports run counters to the observability registry.
    pub fn export_metrics(&self, reg: &traxtent::obs::Registry) {
        reg.add("workloads.replay.requests", self.requests() as u64);
        reg.add(
            "workloads.replay.sectors",
            self.completions.iter().map(|c| c.request.len).sum(),
        );
        reg.add(
            "workloads.replay.cache_hits",
            self.completions.iter().filter(|c| c.cache_hit).count() as u64,
        );
        reg.set_max(
            "workloads.replay.sim_span_ms",
            self.sim_span().as_ns() / 1_000_000,
        );
    }
}

/// How many requests each [`Disk::service_batch_into`] call carries.
///
/// Batching amortizes the per-call validation sweep without holding the
/// whole trace's completions in flight; the value is a latency/locality
/// compromise, not a correctness knob.
pub const BATCH: usize = 1024;

/// Replays `records` against `disk` in arrival order.
///
/// Requests are issued at their recorded arrival times — an *open* replay:
/// the drive's own queueing model decides how an arrival during a busy
/// period is absorbed, exactly as with back-to-back
/// [`Disk::service`] calls.
///
/// # Panics
///
/// Panics if a record reaches beyond the disk's capacity or arrivals are
/// out of order (a parsed trace has already validated ordering).
pub fn replay(disk: &mut Disk, records: &[TraceRecord]) -> ReplayResult {
    let mut completions = Vec::with_capacity(records.len());
    let mut batch = Vec::with_capacity(BATCH.min(records.len()));
    for chunk in records.chunks(BATCH.max(1)) {
        batch.clear();
        batch.extend(chunk.iter().map(|r| (r.request, r.arrival)));
        disk.service_batch_into(&batch, &mut completions);
    }
    ReplayResult { completions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_disk::models;

    fn atlas() -> Disk {
        Disk::new(models::quantum_atlas_10k_ii())
    }

    #[test]
    fn parse_accepts_comments_blanks_and_both_cases() {
        let text = "# header\n\n0.0 R 100 8\n1.5 w 200 16\n";
        let recs = parse_trace(text).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].request, Request::read(100, 8));
        assert_eq!(recs[1].request, Request::write(200, 16));
        assert_eq!(recs[1].arrival.as_ns(), 1_500_000);
    }

    #[test]
    fn parse_errors_name_the_line() {
        for (text, needle) in [
            ("0.0 R 100", "line 1"),
            ("0.0 X 100 8", "R or W"),
            ("0.0 R 100 0", "positive"),
            ("0.0 R 100 8 9", "trailing"),
            ("-1 R 100 8", "non-negative"),
            ("5.0 R 1 1\n2.0 R 1 1", "sorted"),
            ("zz R 1 1", "not a number"),
        ] {
            let err = parse_trace(text).unwrap_err().to_string();
            assert!(err.contains(needle), "`{text}` -> {err}");
        }
    }

    #[test]
    fn parse_errors_are_typed_with_the_offending_line() {
        // Non-monotone arrivals report the *second* line, the one at fault.
        let err = parse_trace("# hdr\n5.0 R 1 1\n\n2.0 R 1 1\n").unwrap_err();
        assert_eq!(err.line, 4);
        assert_eq!(err.kind, ParseErrorKind::NonMonotoneArrival);

        // Zero-sector requests are their own kind, not a generic bad field.
        let err = parse_trace("0.0 R 100 0").unwrap_err();
        assert_eq!(err.line, 1);
        assert_eq!(err.kind, ParseErrorKind::ZeroSectors);

        // Trailing garbage after a well-formed prefix.
        let err = parse_trace("0.0 R 100 8\n1.0 W 200 16 junk\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert_eq!(err.kind, ParseErrorKind::TrailingFields);

        // The bad op token is carried verbatim.
        let err = parse_trace("0.0 Q 100 8").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::BadOp("Q".to_string()));

        // Missing and malformed fields name the field.
        let err = parse_trace("0.0 R").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::MissingField("lbn"));
        let err = parse_trace("0.0 R ten 8").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::BadField("lbn"));
        let err = parse_trace("0.0 R 100 eight").unwrap_err();
        assert_eq!(err.kind, ParseErrorKind::BadField("sectors"));

        // Equal arrivals are fine; only a step backwards is non-monotone.
        assert!(parse_trace("3.0 R 1 1\n3.0 R 2 1\n").is_ok());
    }

    #[test]
    fn render_round_trips() {
        let spec = SyntheticSpec::default_for(1_000_000, 50, 7);
        let recs = synthetic_trace(&spec);
        // Quantize arrivals to the format's millisecond precision first.
        let quantized: Vec<TraceRecord> = recs
            .iter()
            .map(|r| TraceRecord {
                arrival: SimTime::ZERO
                    + SimDur::from_millis_f64(
                        format!("{:.3}", r.arrival.as_millis_f64()).parse().unwrap(),
                    ),
                ..*r
            })
            .collect();
        assert_eq!(parse_trace(&render_trace(&quantized)).unwrap(), quantized);
    }

    #[test]
    fn synthetic_is_deterministic_and_in_range() {
        let spec = SyntheticSpec::default_for(4_000_000, 200, 42);
        let a = synthetic_trace(&spec);
        let b = synthetic_trace(&spec);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert!(a.iter().all(|r| r.request.end() <= 4_000_000));
    }

    #[test]
    fn replay_matches_sequential_service_calls() {
        let spec = SyntheticSpec {
            count: 3000, // > BATCH so chunking is exercised
            ..SyntheticSpec::default_for(8_000_000, 0, 0x5eed)
        };
        let records = synthetic_trace(&spec);
        let batched = replay(&mut atlas(), &records);
        let mut one = atlas();
        let serial: Vec<Completion> = records
            .iter()
            .map(|r| one.service(r.request, r.arrival))
            .collect();
        assert_eq!(batched.completions, serial);
        assert_eq!(batched.requests(), 3000);
        assert!(batched.sim_span() > SimDur::ZERO);
        assert!(batched.mean_response_ms() > 0.0);
        assert!(batched.max_response_ms() >= batched.mean_response_ms());
    }

    #[test]
    fn export_metrics_counts_requests() {
        let records = synthetic_trace(&SyntheticSpec::default_for(1_000_000, 64, 3));
        let r = replay(&mut atlas(), &records);
        let reg = traxtent::obs::Registry::new();
        r.export_metrics(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.get("workloads.replay.requests"), Some(64));
    }
}
