//! Application-level workloads on the FFS prototype — the six columns of
//! Table 2.
//!
//! Each workload has a *setup* phase (file creation on a fresh file system)
//! and a *measured* phase that runs from a simulated fresh boot
//! ([`ffs::FileSystem::remount`]): cold buffer cache, cold drive cache,
//! clock at zero — exactly how the paper ran each test "on a freshly-booted
//! system".

use ffs::{FileId, FileSystem, Personality};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sim_disk::disk::Disk;
use sim_disk::SimDur;

/// One Table 2 row's worth of results for a single FFS personality.
#[derive(Debug, Clone, Copy)]
pub struct AppResult {
    /// Simulated run time of the measured phase.
    pub elapsed: SimDur,
    /// Disk reads + writes issued during the measured phase.
    pub requests: u64,
    /// Mean request size during the measured phase, bytes.
    pub mean_request_bytes: f64,
}

impl AppResult {
    /// Publishes the result under `workloads.app.*`, tagged with the
    /// workload `name` (e.g. `workloads.app.scan.requests`). Request counts
    /// and elapsed simulated time sum; the mean request size is recorded as
    /// a high-water mark so parallel personalities exporting the same
    /// workload commute.
    pub fn export_metrics(&self, reg: &traxtent::obs::Registry, name: &str) {
        reg.add(&format!("workloads.app.{name}.requests"), self.requests);
        reg.add(
            &format!("workloads.app.{name}.elapsed_us"),
            self.elapsed.as_ns() / 1_000,
        );
        reg.set_max(
            &format!("workloads.app.{name}.max_mean_request_bytes"),
            self.mean_request_bytes as u64,
        );
    }
}

fn result_of(fs: &FileSystem, elapsed: SimDur) -> AppResult {
    let s = fs.stats();
    AppResult {
        elapsed,
        requests: s.disk_reads + s.disk_writes,
        mean_request_bytes: s.mean_request_bytes(),
    }
}

/// Builds a fresh file system of the given personality on `disk`.
pub fn mkfs(disk: Disk, personality: Personality) -> FileSystem {
    FileSystem::format(disk, personality)
}

/// Sequential scan of one large file (the paper's 4 GB scan; size here is a
/// parameter so small test disks can run it too), reading `chunk` bytes at
/// a time.
pub fn scan(fs: &mut FileSystem, file_bytes: u64, chunk: u64) -> AppResult {
    let f = fs.create();
    fs.write(f, 0, file_bytes).expect("setup write fits");
    let ((), elapsed) = fs.timed(|fs| {
        let mut at = 0;
        while at < file_bytes {
            let n = chunk.min(file_bytes - at);
            fs.read(f, at, n).expect("in range");
            at += n;
        }
    });
    result_of(fs, elapsed)
}

/// `diff` of two large files: interleaved sequential reads of both, `chunk`
/// bytes from each in turn (the application compares them in memory).
pub fn diff(fs: &mut FileSystem, file_bytes: u64, chunk: u64) -> AppResult {
    let a = fs.create();
    fs.write(a, 0, file_bytes).expect("setup write fits");
    let b = fs.create();
    fs.write(b, 0, file_bytes).expect("setup write fits");
    let ((), elapsed) = fs.timed(|fs| {
        let mut at = 0;
        while at < file_bytes {
            let n = chunk.min(file_bytes - at);
            fs.read(a, at, n).expect("in range");
            fs.read(b, at, n).expect("in range");
            at += n;
        }
    });
    result_of(fs, elapsed)
}

/// Copy of one large file to a new file in the same directory: sequential
/// reads feeding buffered writes, two interleaved request streams at the
/// disk.
pub fn copy(fs: &mut FileSystem, file_bytes: u64, chunk: u64) -> AppResult {
    let src = fs.create();
    fs.write(src, 0, file_bytes).expect("setup write fits");
    let (_dst, elapsed) = fs.timed(|fs| {
        let dst = fs.create();
        let mut at = 0;
        while at < file_bytes {
            let n = chunk.min(file_bytes - at);
            fs.read(src, at, n).expect("in range");
            fs.write(dst, at, n).expect("space available");
            at += n;
        }
        dst
    });
    result_of(fs, elapsed)
}

/// Postmark-like small-file transactions (v1.11 defaults: 5–10 KB files,
/// 1:1 read/write and create/delete mixes). Returns the result plus the
/// transactions-per-second rate the Postmark tool reports.
pub fn postmark(
    fs: &mut FileSystem,
    initial_files: usize,
    transactions: usize,
    seed: u64,
) -> (AppResult, f64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool: Vec<(FileId, u64)> = Vec::new();
    for _ in 0..initial_files {
        let size = rng.gen_range(5 * 1024..=10 * 1024);
        let f = fs.create();
        fs.write(f, 0, size).expect("setup write fits");
        pool.push((f, size));
    }
    let mut rng2 = StdRng::seed_from_u64(seed ^ 0xdead_beef);
    let ((), elapsed) = fs.timed(|fs| {
        for i in 0..transactions {
            // Alternate read/append and create/delete pairs (1:1 ratios).
            let pick = rng2.gen_range(0..pool.len());
            let (f, size) = pool[pick];
            if i % 2 == 0 {
                if i % 4 == 0 {
                    fs.read(f, 0, size).expect("in range");
                } else {
                    let extra = rng2.gen_range(1024..=4096);
                    fs.write(f, size, extra).expect("space available");
                    pool[pick].1 = size + extra;
                }
            } else if i % 4 == 1 {
                let size = rng2.gen_range(5 * 1024..=10 * 1024);
                let f = fs.create();
                fs.write(f, 0, size).expect("space available");
                pool.push((f, size));
            } else {
                let victim = rng2.gen_range(0..pool.len());
                let (f, _) = pool.swap_remove(victim);
                fs.delete(f).expect("exists");
            }
        }
    });
    let tps = transactions as f64 / elapsed.as_secs_f64();
    (result_of(fs, elapsed), tps)
}

/// SSH-build-like three-phase software-build workload: unpack (create many
/// small files), configure (read a subset, write small outputs), build
/// (read sources, write objects). Dominated by small synchronous writes and
/// cache hits, as in the paper.
pub fn ssh_build(fs: &mut FileSystem, seed: u64) -> AppResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let ((), elapsed) = fs.timed(|fs| {
        // Phase 1: unpack ~400 source files of 1–32 KB.
        let mut sources = Vec::new();
        for _ in 0..400 {
            let size = rng.gen_range(1024..=32 * 1024);
            let f = fs.create();
            fs.write(f, 0, size).expect("space available");
            sources.push((f, size));
        }
        // Phase 2: configure — read headers, write small config outputs.
        for i in 0..60 {
            let (f, size) = sources[i % sources.len()];
            fs.read(f, 0, size.min(4096)).expect("in range");
            let out = fs.create();
            fs.write(out, 0, 2048).expect("space available");
        }
        // Phase 3: build — read each source fully, write a ~60 % object.
        for &(f, size) in &sources {
            fs.read(f, 0, size).expect("in range");
            let obj = fs.create();
            fs.write(obj, 0, (size * 3 / 5).max(1024))
                .expect("space available");
        }
    });
    result_of(fs, elapsed)
}

/// `head*`: read the first byte of many medium files — the traxtent
/// worst-case (§5.3), because the traxtent FFS fetches the whole first
/// traxtent where stock FFS fetches one block plus one read-ahead block.
pub fn head_star(fs: &mut FileSystem, files: usize, file_bytes: u64) -> AppResult {
    let mut ids = Vec::new();
    for _ in 0..files {
        let f = fs.create();
        fs.write(f, 0, file_bytes).expect("setup write fits");
        ids.push(f);
    }
    let ((), elapsed) = fs.timed(|fs| {
        for &f in &ids {
            fs.read(f, 0, 1).expect("in range");
        }
    });
    result_of(fs, elapsed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_disk::models;

    const MB: u64 = 1 << 20;

    fn fs(p: Personality) -> FileSystem {
        mkfs(Disk::new(models::small_test_disk()), p)
    }

    /// The Table 2 platform: gains only show when clusters span multiple
    /// tracks, so these tests use the real Atlas 10K geometry (167 KB
    /// first-zone tracks vs 256 KB clusters) with scaled-down files.
    fn atlas(p: Personality) -> FileSystem {
        mkfs(Disk::new(models::quantum_atlas_10k()), p)
    }

    #[test]
    fn export_metrics_tags_the_workload() {
        let r = scan(&mut fs(Personality::Unmodified), 4 * MB, 64 * 1024);
        let reg = traxtent::obs::Registry::new();
        r.export_metrics(&reg, "scan");
        let snap = reg.snapshot();
        assert_eq!(snap.get("workloads.app.scan.requests"), Some(r.requests));
        assert_eq!(
            snap.get("workloads.app.scan.elapsed_us"),
            Some(r.elapsed.as_ns() / 1_000)
        );
        assert_eq!(
            snap.get("workloads.app.scan.max_mean_request_bytes"),
            Some(r.mean_request_bytes as u64)
        );
    }

    #[test]
    fn scan_penalty_for_traxtents_is_small() {
        // Table 2: single-stream scan is ~5 % slower with traxtents
        // (excluded blocks shrink effective streaming bandwidth).
        let u = scan(&mut fs(Personality::Unmodified), 24 * MB, 64 * 1024);
        let t = scan(&mut fs(Personality::Traxtent), 24 * MB, 64 * 1024);
        let ratio = t.elapsed.as_secs_f64() / u.elapsed.as_secs_f64();
        assert!((1.0..=1.15).contains(&ratio), "scan ratio {ratio}");
    }

    #[test]
    fn diff_gains_from_traxtents() {
        // Table 2: interleaved two-file reads are ~19 % faster with
        // traxtents.
        let u = diff(&mut atlas(Personality::Unmodified), 32 * MB, 64 * 1024);
        let t = diff(&mut atlas(Personality::Traxtent), 32 * MB, 64 * 1024);
        let ratio = u.elapsed.as_secs_f64() / t.elapsed.as_secs_f64();
        assert!(ratio > 1.08, "diff speedup {ratio}");
    }

    #[test]
    fn copy_gains_from_traxtents() {
        let u = copy(&mut atlas(Personality::Unmodified), 32 * MB, 64 * 1024);
        let t = copy(&mut atlas(Personality::Traxtent), 32 * MB, 64 * 1024);
        let ratio = u.elapsed.as_secs_f64() / t.elapsed.as_secs_f64();
        assert!(ratio > 1.05, "copy speedup {ratio}");
    }

    #[test]
    fn head_star_is_the_traxtent_worst_case() {
        let u = head_star(&mut atlas(Personality::Unmodified), 120, 200 * 1024);
        let t = head_star(&mut atlas(Personality::Traxtent), 120, 200 * 1024);
        let ratio = t.elapsed.as_secs_f64() / u.elapsed.as_secs_f64();
        assert!(ratio > 1.15, "head* penalty {ratio}");
    }

    #[test]
    fn postmark_is_roughly_unaffected() {
        let (_, u_tps) = postmark(&mut fs(Personality::Unmodified), 100, 400, 7);
        let (_, t_tps) = postmark(&mut fs(Personality::Traxtent), 100, 400, 7);
        let ratio = t_tps / u_tps;
        assert!((0.9..=1.25).contains(&ratio), "postmark ratio {ratio}");
    }

    #[test]
    fn ssh_build_is_roughly_unaffected() {
        let u = ssh_build(&mut fs(Personality::Unmodified), 3);
        let t = ssh_build(&mut fs(Personality::Traxtent), 3);
        let ratio = t.elapsed.as_secs_f64() / u.elapsed.as_secs_f64();
        assert!((0.85..=1.15).contains(&ratio), "ssh-build ratio {ratio}");
    }

    #[test]
    fn results_are_deterministic() {
        let a = diff(&mut fs(Personality::Traxtent), 4 * MB, 64 * 1024);
        let b = diff(&mut fs(Personality::Traxtent), 4 * MB, 64 * 1024);
        assert_eq!(a.elapsed, b.elapsed);
    }
}
