//! End-to-end observability properties of `serve()`: percentile edge
//! cases, span-tree shape over a bare drive, timeline coverage, and the
//! invariant that instrumentation never perturbs results.

use server::{serve, DiskSpanBridge, SchedulerKind, ServerConfig, TimelineConfig};
use sim_disk::disk::{Disk, Request};
use sim_disk::models::quantum_atlas_10k_ii;
use sim_disk::trace::Tracer;
use sim_disk::SimTime;
use traxtent::obs::span::{self, Span, SpanRecorder};
use workloads::replay::{synthetic_trace, SyntheticSpec, TraceRecord};

fn trace(count: usize, interarrival_ms: f64) -> Vec<TraceRecord> {
    let capacity = Disk::new(quantum_atlas_10k_ii()).capacity_lbns();
    synthetic_trace(&SyntheticSpec {
        count,
        interarrival_ms,
        io_sectors: 96,
        read_fraction: 0.7,
        capacity_lbns: capacity,
        seed: 23,
    })
}

#[test]
fn percentile_ms_edge_cases() {
    let cfg = ServerConfig::new(SchedulerKind::Fifo);

    // Empty run: no completions, every percentile is 0.
    let mut disk = Disk::new(quantum_atlas_10k_ii());
    let empty = serve(&mut disk, &[], &cfg).unwrap();
    assert_eq!(empty.completed(), 0);
    for p in [0.0, 0.5, 0.99, 1.0] {
        assert_eq!(empty.percentile_ms(p), 0.0);
    }
    assert_eq!(empty.sim_end, SimTime::ZERO);

    // Single sample: every percentile is that sample.
    let one = vec![TraceRecord {
        arrival: SimTime::ZERO,
        request: Request::read(5_000, 64),
    }];
    let mut disk = Disk::new(quantum_atlas_10k_ii());
    let res = serve(&mut disk, &one, &cfg).unwrap();
    assert_eq!(res.completed(), 1);
    let only = res.completions[0].response_ms();
    assert!(only > 0.0);
    for p in [0.0, 0.25, 1.0] {
        assert_eq!(res.percentile_ms(p), only, "p={p}");
    }

    // Many samples: p=0.0 is the min, p=1.0 is the max.
    let mut disk = Disk::new(quantum_atlas_10k_ii());
    let res = serve(&mut disk, &trace(300, 4.0), &cfg).unwrap();
    let ms = res.response_ms();
    let min = ms.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = ms.iter().cloned().fold(0.0, f64::max);
    assert_eq!(res.percentile_ms(0.0), min);
    assert_eq!(res.percentile_ms(1.0), max);
    assert!(res.percentile_ms(0.5) >= min && res.percentile_ms(0.5) <= max);
}

/// Runs `serve` with full span instrumentation over a bare drive.
fn spanned_run(records: &[TraceRecord], salt: u64) -> (server::ServerResult, Vec<Span>) {
    let rec = SpanRecorder::new();
    rec.set_salt(salt);
    let mut config = quantum_atlas_10k_ii();
    config.tracer = Some(Tracer::from_sink(DiskSpanBridge::new(rec.clone())));
    let mut disk = Disk::new(config);
    let mut cfg = ServerConfig::new(SchedulerKind::CLook);
    cfg.queue_limit = 24;
    let cfg = cfg.with_spans(rec.clone());
    let res = serve(&mut disk, records, &cfg).unwrap();
    (res, rec.take_sorted())
}

#[test]
fn serve_emits_one_connected_tree_per_request() {
    let records = trace(120, 3.0);
    let (res, spans) = spanned_run(&records, 0x5eed);
    let stats = span::validate(&spans).unwrap();
    assert!(stats.spans > 0);
    // Depth reaches the drive phases: request → dispatch → disk_cmd → phase.
    assert!(stats.max_depth >= 4, "depth {}", stats.max_depth);

    // One root per request (completed or rejected) plus one per round.
    let request_roots = spans
        .iter()
        .filter(|s| s.parent == 0 && s.name == "request")
        .count() as u64;
    assert_eq!(request_roots, res.completed() + res.rejected());
    let rounds = spans
        .iter()
        .filter(|s| s.parent == 0 && s.name == "round")
        .count() as u64;
    assert!(rounds > 0 && rounds <= res.dispatches);

    // Every completed request's tree reaches a drive command.
    let by_id: std::collections::BTreeMap<u64, &Span> = spans.iter().map(|s| (s.id, s)).collect();
    let mut reached = 0u64;
    for s in &spans {
        if s.name != "disk_cmd" {
            continue;
        }
        let mut at = s.parent;
        while at != 0 {
            let p = by_id[&at];
            if p.name == "request" && p.parent == 0 {
                reached += 1;
            }
            at = p.parent;
        }
    }
    assert!(reached > 0, "disk commands chain up to request roots");

    // Rejected requests carry reject children.
    let rejects = spans.iter().filter(|s| s.name == "reject").count() as u64;
    assert_eq!(rejects, res.rejected());
}

#[test]
fn spans_and_timeline_never_perturb_results() {
    let records = trace(200, 2.5);
    let mut plain_disk = Disk::new(quantum_atlas_10k_ii());
    let mut plain_cfg = ServerConfig::new(SchedulerKind::CLook);
    plain_cfg.queue_limit = 24; // matches spanned_run's config
    let plain = serve(&mut plain_disk, &records, &plain_cfg).unwrap();
    let (instrumented, spans) = spanned_run(&records, 7);
    assert!(!spans.is_empty());
    assert_eq!(plain.completed(), instrumented.completed());
    assert_eq!(plain.rejected_ids, instrumented.rejected_ids);
    assert_eq!(plain.sim_end, instrumented.sim_end);
    for (a, b) in plain.completions.iter().zip(&instrumented.completions) {
        assert_eq!((a.id, a.completion), (b.id, b.completion));
    }

    // A timeline-enabled run is also identical.
    let mut disk = Disk::new(quantum_atlas_10k_ii());
    let mut cfg = ServerConfig::new(SchedulerKind::CLook)
        .with_timeline(TimelineConfig::new(250.0).with_slo(40.0, 0.05));
    cfg.queue_limit = 24;
    let timed = serve(&mut disk, &records, &cfg).unwrap();
    assert_eq!(timed.sim_end, plain.sim_end);
    assert_eq!(timed.percentile_ms(0.99), plain.percentile_ms(0.99));
}

#[test]
fn span_output_is_deterministic() {
    let records = trace(80, 3.0);
    let (_, a) = spanned_run(&records, 99);
    let (_, b) = spanned_run(&records, 99);
    let render = |spans: &[Span]| {
        spans
            .iter()
            .map(Span::to_json)
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(render(&a), render(&b));
    // A different salt changes ids but not the tree shape.
    let (_, c) = spanned_run(&records, 100);
    assert_ne!(render(&a), render(&c));
    assert_eq!(a.len(), c.len());
    assert_eq!(
        span::validate(&a).unwrap().max_depth,
        span::validate(&c).unwrap().max_depth
    );
}

#[test]
fn timeline_covers_the_run_and_accounts_every_event() {
    let records = trace(400, 2.0);
    let mut disk = Disk::new(quantum_atlas_10k_ii());
    let mut cfg = ServerConfig::new(SchedulerKind::CLook)
        .with_timeline(TimelineConfig::new(200.0).with_slo(25.0, 0.1));
    cfg.queue_limit = 24;
    let res = serve(&mut disk, &records, &cfg).unwrap();
    let t = res.timeline.as_ref().expect("timeline recorded");
    assert_eq!(t.window_ms, 200.0);
    let windows = (res.sim_end.as_ns() as f64 / 2e8).ceil() as usize;
    assert_eq!(t.buckets.len(), windows, "covers [0, sim_end)");
    let completed: u64 = t.buckets.iter().map(|b| b.completed).sum();
    let rejected: u64 = t.buckets.iter().map(|b| b.rejected).sum();
    assert_eq!(completed, res.completed());
    assert_eq!(rejected, res.rejected());
    // Busy fractions observed for the single member, all within [0, 1].
    assert!(t
        .buckets
        .iter()
        .any(|b| b.busy_frac.first().copied().unwrap_or(0.0) > 0.1));
    for b in &t.buckets {
        for f in &b.busy_frac {
            assert!((0.0..=1.0001).contains(f), "busy {f}");
        }
        assert!(b.p50_ms <= b.p99_ms);
    }
    let slo = res.slo.expect("slo summary");
    assert_eq!(slo.windows, windows as u64);
    assert_eq!(
        slo.total_over,
        res.response_ms().iter().filter(|&&ms| ms > 25.0).count() as u64
    );
}
