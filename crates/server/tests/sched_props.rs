//! Property-based tests for the scheduler invariants the server loop
//! depends on, over random geometries, confidence maps, and arrival
//! seeds:
//!
//! * every admitted request is dispatched exactly once (and every trace
//!   request either completes or is rejected — never both, never lost);
//! * C-LOOK never starves a request past a bounded number of sweeps: a
//!   request is dispatched within two wrap-arounds of its admission;
//! * traxtent-aware coalesced batches never cross a trusted track
//!   boundary, merge only contiguous same-op runs, and only form on
//!   tracks whose confidence clears the threshold.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use server::{serve, CLook, Queued, Scheduler, SchedulerKind, ServerConfig, Traxtent};
use sim_disk::disk::{Disk, Op, Request};
use sim_disk::{models, SimTime};
use traxtent::{ConfidentBoundaries, TrackBoundaries};

/// A queued entry with id-derived arrival (arrival order == id order,
/// matching how the server loop assigns ids).
fn q(id: u64, op: Op, lbn: u64, len: u64) -> Queued {
    Queued {
        id,
        arrival: SimTime::from_ns(id),
        request: Request::new(op, lbn, len),
    }
}

/// Random `(track_len, confidence)` tables plus a raw request stream
/// `(lbn_seed, len_seed, op_flag)`; seeds are reduced modulo the table's
/// capacity in the test body (the vendored proptest has no flat-map).
#[allow(clippy::type_complexity)]
fn arb_table_case() -> impl Strategy<Value = (Vec<(u64, f64)>, Vec<(u64, u64, u64)>)> {
    (
        prop::collection::vec((10u64..60, 0.0f64..1.0), 4..16),
        prop::collection::vec((0u64..1_000_000, 1u64..40, 0u64..2), 1..60),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Full server runs on the test drive: every trace request appears
    /// exactly once across completions and rejections, for every
    /// scheduler kind and random arrival seeds, queue bounds, and
    /// per-track confidence.
    #[test]
    fn every_request_completes_or_rejects_exactly_once(
        seed in 0u64..1_000_000,
        queue_limit in 1usize..48,
        max_batch in 1usize..16,
        kind_pick in 0usize..3,
        rate in 50.0f64..2000.0,
    ) {
        let mut disk = Disk::new(models::small_test_disk());
        let capacity = disk.geometry().capacity_lbns();
        let trace = workloads::arrivals::poisson_trace(&workloads::arrivals::PoissonSpec {
            rate_per_sec: rate,
            count: 300,
            capacity_lbns: capacity,
            io_sectors: 64,
            read_fraction: 0.6,
            seed,
        });
        let kind = SchedulerKind::ALL[kind_pick];
        let mut cfg = ServerConfig::new(kind);
        cfg.queue_limit = queue_limit;
        cfg.max_batch = max_batch;
        if kind == SchedulerKind::Traxtent {
            let table = server::drive_boundaries(&disk);
            let mut rng = StdRng::seed_from_u64(seed ^ 0xc0ff);
            let conf: Vec<f64> =
                (0..table.num_tracks()).map(|_| rng.gen::<f64>()).collect();
            cfg.boundaries = Some(ConfidentBoundaries::new(table, conf).unwrap());
        }
        let res = serve(&mut disk, &trace, &cfg).unwrap();
        prop_assert_eq!(res.completed() + res.rejected(), trace.len() as u64);
        let mut ids: Vec<u64> = res.completions.iter().map(|c| c.id).collect();
        ids.extend(&res.rejected_ids);
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..trace.len() as u64).collect::<Vec<_>>());
        prop_assert!(res.max_depth <= queue_limit);
        // Completions never predate their arrivals.
        for c in &res.completions {
            prop_assert!(c.completion > c.arrival);
        }
    }

    /// C-LOOK starvation bound: between a request's admission and its
    /// dispatch the elevator wraps at most twice, no matter how arrivals
    /// interleave with scheduling rounds.
    #[test]
    fn clook_never_starves_past_two_wraps(
        raw in prop::collection::vec((0u64..100_000, 1u64..64, 1usize..8), 10..120),
        max_batch in 1usize..8,
        arrive_seed in 0u64..1_000_000,
    ) {
        let mut sched = CLook::new();
        let mut pending: Vec<Queued> = Vec::new();
        let mut admitted_wraps: Vec<u64> = Vec::new();
        let mut dispatched = vec![false; raw.len()];
        let mut rng = StdRng::seed_from_u64(arrive_seed);
        let mut next = 0usize;
        while next < raw.len() || !pending.is_empty() {
            // Admit a random-sized burst of the remaining arrivals.
            let burst = if next < raw.len() { rng.gen_range(0..4) } else { 0 };
            for _ in 0..burst.min(raw.len() - next) {
                let (lbn, len, _) = raw[next];
                pending.push(q(next as u64, Op::Read, lbn, len));
                admitted_wraps.push(sched.wraps());
                next += 1;
            }
            if pending.is_empty() && next < raw.len() {
                continue;
            }
            for d in sched.select(&mut pending, max_batch) {
                for p in &d.parts {
                    let id = p.id as usize;
                    prop_assert!(!dispatched[id], "request {id} dispatched twice");
                    dispatched[id] = true;
                    prop_assert!(
                        sched.wraps() - admitted_wraps[id] <= 2,
                        "request {id} waited {} wraps",
                        sched.wraps() - admitted_wraps[id]
                    );
                }
            }
        }
        prop_assert!(dispatched.iter().all(|&d| d), "every request dispatched");
    }

    /// Traxtent batches: coalesced commands lie entirely within one
    /// track, that track's confidence clears the threshold, merged runs
    /// are contiguous and same-op, and the scheduler still dispatches
    /// every request exactly once — over random tables and confidences.
    #[test]
    fn traxtent_batches_never_cross_trusted_boundaries(
        case in arb_table_case(),
        threshold in 0.3f64..0.95,
        max_batch in 1usize..12,
        groups in 1usize..6,
    ) {
        let (tracks, raw) = case;
        let lens: Vec<u64> = tracks.iter().map(|(l, _)| *l).collect();
        let confs: Vec<f64> = tracks.iter().map(|(_, c)| *c).collect();
        let table = TrackBoundaries::from_track_lengths(lens).unwrap();
        let cap = table.capacity();
        let check = table.clone();
        let conf = ConfidentBoundaries::new(table, confs.clone()).unwrap();
        let mut sched = Traxtent::new(conf, threshold);
        let mut pending: Vec<Queued> = Vec::new();
        let mut dispatched = vec![false; raw.len()];
        let group_len = raw.len().div_ceil(groups);
        let drain = |sched: &mut Traxtent,
                         pending: &mut Vec<Queued>,
                         dispatched: &mut Vec<bool>,
                         all: bool| {
            loop {
                let round = sched.select(pending, max_batch);
                if round.is_empty() {
                    break;
                }
                for d in &round {
                    let end = d.request.lbn + d.request.len;
                    prop_assert!(end <= cap);
                    // Parts partition the command contiguously, same op.
                    let mut at = d.request.lbn;
                    for p in &d.parts {
                        prop_assert_eq!(p.request.lbn, at, "contiguous run");
                        prop_assert_eq!(p.request.op, d.request.op, "same op");
                        at += p.request.len;
                        let id = p.id as usize;
                        prop_assert!(!dispatched[id], "dispatched twice");
                        dispatched[id] = true;
                    }
                    prop_assert_eq!(at, end, "parts cover the command");
                    if d.coalesced() {
                        let (start, t_end) = check.track_bounds(d.request.lbn);
                        prop_assert!(
                            d.request.lbn >= start && end <= t_end,
                            "coalesced batch {}..{} crosses track {}..{}",
                            d.request.lbn, end, start, t_end
                        );
                        let track = check.track_index(d.request.lbn);
                        prop_assert!(
                            confs[track] >= threshold,
                            "coalesced on low-confidence track {track}"
                        );
                    }
                }
                if !all {
                    break;
                }
            }
        };
        for (i, chunk) in raw.chunks(group_len).enumerate() {
            for (j, &(lbn_seed, len_seed, op_flag)) in chunk.iter().enumerate() {
                let id = (i * group_len + j) as u64;
                let lbn = lbn_seed % cap;
                let len = len_seed.min(cap - lbn).max(1);
                let op = if op_flag == 0 { Op::Read } else { Op::Write };
                pending.push(q(id, op, lbn, len));
            }
            // One scheduling round between arrival groups.
            drain(&mut sched, &mut pending, &mut dispatched, false);
        }
        drain(&mut sched, &mut pending, &mut dispatched, true);
        prop_assert!(pending.is_empty());
        prop_assert!(dispatched.iter().all(|&d| d), "every request dispatched");
    }
}
