//! An open-loop storage server over the simulated drive.
//!
//! Every figure in the stack before this crate was closed-loop: a fixed
//! number of outstanding requests, so the drive sets the pace and queues
//! never grow. The paper's argument for track-aligned extents, though, is
//! about *service-time predictability* — and predictability only matters
//! under an open-loop arrival process, where work keeps arriving whether
//! or not the drive keeps up and every millisecond of excess service time
//! compounds into queueing delay. This crate runs the drive as a server:
//!
//! * a bounded [`admission`] queue with typed overload rejection;
//! * pluggable [`sched`] dispatch policies — FIFO, C-LOOK, and a
//!   traxtent-aware batcher that coalesces queued requests into
//!   track-aligned commands on trusted tracks (degrading to C-LOOK where
//!   boundary confidence is low);
//! * the [`serve`] loop itself, which drives any [`Backend`] — a bare
//!   [`Disk`] or a multi-disk `fleet` volume — on simulated time and
//!   reports response latency percentiles, queue depths, rejections,
//!   and throughput.
//!
//! Determinism: the loop advances a single simulated clock; given the
//! same trace, config, and drive, the result is bit-identical on any
//! machine and at any host thread count (the server itself never
//! spawns threads — parallel sweeps fan whole cells out via
//! `bench::exec`).
//!
//! # Example
//!
//! ```
//! use server::{serve, ServerConfig, SchedulerKind};
//! use sim_disk::disk::Disk;
//! use sim_disk::models::quantum_atlas_10k_ii;
//! use workloads::replay::{synthetic_trace, SyntheticSpec};
//!
//! let mut disk = Disk::new(quantum_atlas_10k_ii());
//! let trace = synthetic_trace(&SyntheticSpec {
//!     count: 200,
//!     interarrival_ms: 5.0,
//!     io_sectors: 64,
//!     read_fraction: 0.7,
//!     capacity_lbns: disk.geometry().capacity_lbns(),
//!     seed: 42,
//! });
//! let result = serve(
//!     &mut disk,
//!     &trace,
//!     &ServerConfig::new(SchedulerKind::CLook),
//! )
//! .unwrap();
//! assert_eq!(result.completed() + result.rejected(), 200);
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod obs;
pub mod sched;
pub mod timeline;

pub use admission::{AdmissionError, AdmissionQueue, Queued};
pub use obs::DiskSpanBridge;
pub use sched::{CLook, Dispatch, Fifo, Scheduler, SchedulerKind, Traxtent};
pub use timeline::{Sampler, SloConfig, SloSummary, Timeline, TimelineBucket, TimelineConfig};

use sim_disk::disk::{Disk, Op, Request};
use sim_disk::{Completion, SimTime};
use std::error::Error;
use std::fmt;
use traxtent::obs::span::{self, Span, SpanRecorder};
use traxtent::obs::Registry;
use traxtent::{stats, ConfidentBoundaries, TrackBoundaries};
use workloads::replay::TraceRecord;

/// A block service the open-loop server can drive: a single simulated
/// drive, or any composition of drives (a striped/mirrored/RAID volume)
/// that presents one logical LBN space.
///
/// The contract mirrors [`Disk::service_batch_into`]: commands must be
/// accepted in non-decreasing issue order, each producing exactly one
/// [`Completion`] whose `completion` instant is on the same simulated
/// clock the issue times use. Implementations must be deterministic —
/// the server's latency percentiles are compared bit-for-bit across
/// hosts and thread counts.
pub trait Backend {
    /// Total addressable LBNs of the logical space.
    fn capacity_lbns(&self) -> u64;

    /// Services a batch of commands, appending one [`Completion`] per
    /// request to `out` in issue order.
    fn service_batch_into(&mut self, batch: &[(Request, SimTime)], out: &mut Vec<Completion>);

    /// Cumulative mechanical occupancy of each member drive in simulated
    /// nanoseconds (one entry per member; a bare disk is one member).
    /// The timeline sampler polls this between rounds to derive windowed
    /// per-member busy fractions; backends without the notion may return
    /// an empty vector (the default).
    fn member_busy_ns(&self) -> Vec<u64> {
        Vec::new()
    }
}

impl Backend for Disk {
    fn capacity_lbns(&self) -> u64 {
        Disk::capacity_lbns(self)
    }

    fn service_batch_into(&mut self, batch: &[(Request, SimTime)], out: &mut Vec<Completion>) {
        Disk::service_batch_into(self, batch, out);
    }

    fn member_busy_ns(&self) -> Vec<u64> {
        vec![self.busy_ns()]
    }
}

/// Server configuration: queue bound, dispatch policy, batch width.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Admission-queue depth bound; arrivals beyond it are rejected.
    pub queue_limit: usize,
    /// Most client requests dispatched per scheduling round.
    pub max_batch: usize,
    /// Dispatch policy.
    pub scheduler: SchedulerKind,
    /// Boundary knowledge for [`SchedulerKind::Traxtent`]; ignored by the
    /// other policies and required (typed error) by that one.
    pub boundaries: Option<ConfidentBoundaries>,
    /// Confidence below which a track is treated as unknown.
    pub confidence_threshold: f64,
    /// Causal-span recorder: when set, every request grows a span tree
    /// (admit → queue-wait → dispatch, plus whatever the backend and the
    /// drives' [`DiskSpanBridge`] hang underneath). `None` (the default)
    /// costs one branch per round.
    pub spans: Option<SpanRecorder>,
    /// Windowed time-series sampler config; `None` (the default) records
    /// no timeline.
    pub timeline: Option<TimelineConfig>,
}

impl ServerConfig {
    /// A config with the defaults the figures use: queue bound 128,
    /// batch width 32, confidence threshold 0.9.
    pub fn new(scheduler: SchedulerKind) -> Self {
        ServerConfig {
            queue_limit: 128,
            max_batch: 32,
            scheduler,
            boundaries: None,
            confidence_threshold: 0.9,
            spans: None,
            timeline: None,
        }
    }

    /// Sets the boundary table (required for the traxtent scheduler).
    pub fn with_boundaries(mut self, boundaries: ConfidentBoundaries) -> Self {
        self.boundaries = Some(boundaries);
        self
    }

    /// Enables causal-span recording into `spans`.
    pub fn with_spans(mut self, spans: SpanRecorder) -> Self {
        self.spans = Some(spans);
        self
    }

    /// Enables the windowed time-series sampler.
    pub fn with_timeline(mut self, timeline: TimelineConfig) -> Self {
        self.timeline = Some(timeline);
        self
    }
}

/// Why [`serve`] refused to run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// The traxtent scheduler was requested without a boundary table.
    MissingBoundaries,
    /// The trace's arrivals are not sorted; carries the first offending
    /// record index.
    UnsortedArrivals {
        /// 0-based index of the record arriving before its predecessor.
        index: usize,
    },
    /// A trace request runs past the drive's capacity; carries its index.
    BeyondCapacity {
        /// 0-based index of the offending record.
        index: usize,
    },
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::MissingBoundaries => {
                write!(f, "traxtent scheduler needs a boundary table")
            }
            ServerError::UnsortedArrivals { index } => {
                write!(f, "trace record {index} arrives before its predecessor")
            }
            ServerError::BeyondCapacity { index } => {
                write!(f, "trace record {index} runs past drive capacity")
            }
        }
    }
}

impl Error for ServerError {}

/// One client request's fate, as seen by the client.
#[derive(Debug, Clone, Copy)]
pub struct ClientCompletion {
    /// The request's index in the arrival trace.
    pub id: u64,
    /// When it arrived at the server.
    pub arrival: SimTime,
    /// When the drive finished it (response = completion − arrival,
    /// queueing delay included).
    pub completion: SimTime,
    /// Whether it was served by a coalesced (multi-request) command.
    pub coalesced: bool,
}

impl ClientCompletion {
    /// Client-observed response time in milliseconds.
    pub fn response_ms(&self) -> f64 {
        self.completion.since(self.arrival).as_millis_f64()
    }
}

/// The measured outcome of a [`serve`] run.
#[derive(Debug, Clone)]
pub struct ServerResult {
    /// Per-request completions, sorted by trace index.
    pub completions: Vec<ClientCompletion>,
    /// Trace indices refused admission, in arrival order.
    pub rejected_ids: Vec<u64>,
    /// High-water admission-queue depth.
    pub max_depth: usize,
    /// Disk commands issued (≤ completed requests when coalescing).
    pub dispatches: u64,
    /// Client requests served by multi-request commands.
    pub coalesced_requests: u64,
    /// Elevator wrap-arounds (0 for FIFO).
    pub wraps: u64,
    /// Instant the last command completed.
    pub sim_end: SimTime,
    /// The windowed time series, when [`ServerConfig::timeline`] was set.
    pub timeline: Option<Timeline>,
    /// The SLO breach summary, when the timeline config carried an SLO.
    pub slo: Option<SloSummary>,
    /// Time-weighted integral of queue depth, in depth·nanoseconds.
    depth_ns: u128,
}

impl ServerResult {
    /// Requests that completed.
    pub fn completed(&self) -> u64 {
        self.completions.len() as u64
    }

    /// Requests refused admission.
    pub fn rejected(&self) -> u64 {
        self.rejected_ids.len() as u64
    }

    /// Per-request response times in milliseconds, in trace order.
    pub fn response_ms(&self) -> Vec<f64> {
        self.completions.iter().map(|c| c.response_ms()).collect()
    }

    /// Response-time percentile (`p` in `[0, 1]`), or 0 with no
    /// completions.
    pub fn percentile_ms(&self, p: f64) -> f64 {
        let xs = self.response_ms();
        if xs.is_empty() {
            0.0
        } else {
            stats::percentile(&xs, p)
        }
    }

    /// Mean response time in milliseconds.
    pub fn mean_response_ms(&self) -> f64 {
        stats::mean(&self.response_ms())
    }

    /// Completed requests per simulated second.
    pub fn throughput_rps(&self) -> f64 {
        let span = self.sim_end.as_secs_f64();
        if span > 0.0 {
            self.completions.len() as f64 / span
        } else {
            0.0
        }
    }

    /// Time-weighted mean queue depth over the run.
    pub fn mean_depth(&self) -> f64 {
        let span = self.sim_end.as_ns();
        if span > 0 {
            self.depth_ns as f64 / span as f64
        } else {
            0.0
        }
    }

    /// Fraction of arrivals refused admission.
    pub fn rejection_fraction(&self) -> f64 {
        let total = self.completed() + self.rejected();
        if total > 0 {
            self.rejected() as f64 / total as f64
        } else {
            0.0
        }
    }

    /// Exports counters into the observability registry under `server.*`
    /// (totals accumulate across sweep cells sharing one registry; the
    /// depth high-water mark merges via `set_max`).
    pub fn export_metrics(&self, reg: &Registry) {
        reg.add("server.completed", self.completed());
        reg.add("server.rejected", self.rejected());
        reg.add("server.dispatches", self.dispatches);
        reg.add("server.coalesced_requests", self.coalesced_requests);
        reg.add("server.wraps", self.wraps);
        reg.set_max("server.max_depth", self.max_depth as u64);
    }
}

/// Builds the ground-truth track-boundary table of a drive, the way the
/// extraction figures do: one entry per track that maps LBNs.
pub fn drive_boundaries(disk: &Disk) -> TrackBoundaries {
    TrackBoundaries::new(
        disk.geometry()
            .iter_tracks()
            .filter(|(_, t)| t.lbn_count() > 0)
            .map(|(_, t)| t.first_lbn())
            .collect(),
        disk.geometry().capacity_lbns(),
    )
    .expect("geometry yields a valid table")
}

/// Runs the open-loop server over a sorted arrival trace.
///
/// The loop alternates admission and dispatch on one simulated clock:
/// every arrival at or before `now` is offered to the bounded queue in
/// trace order (overflow becomes a typed rejection); the scheduler then
/// picks one round of commands, all issued at `now` through the batched
/// service path; `now` advances to the round's last completion — during
/// which newly arrived requests accumulate, which is exactly how open-
/// loop queues build. When the queue runs dry the clock jumps to the
/// next arrival.
///
/// Client response time is `completion − arrival` and therefore includes
/// queueing delay, not just drive service time.
///
/// The backend is any [`Backend`] — a bare [`Disk`] or a multi-disk
/// volume serving one logical address space.
pub fn serve<B: Backend + ?Sized>(
    disk: &mut B,
    records: &[TraceRecord],
    cfg: &ServerConfig,
) -> Result<ServerResult, ServerError> {
    let capacity = disk.capacity_lbns();
    for (i, r) in records.iter().enumerate() {
        if i > 0 && r.arrival < records[i - 1].arrival {
            return Err(ServerError::UnsortedArrivals { index: i });
        }
        if r.request.lbn + r.request.len > capacity {
            return Err(ServerError::BeyondCapacity { index: i });
        }
    }
    let mut sched: Box<dyn Scheduler> = match cfg.scheduler {
        SchedulerKind::Fifo => Box::new(Fifo),
        SchedulerKind::CLook => Box::new(CLook::new()),
        SchedulerKind::Traxtent => {
            let b = cfg
                .boundaries
                .clone()
                .ok_or(ServerError::MissingBoundaries)?;
            Box::new(Traxtent::new(b, cfg.confidence_threshold))
        }
    };

    let mut queue = AdmissionQueue::new(cfg.queue_limit);
    let mut completions: Vec<ClientCompletion> = Vec::with_capacity(records.len());
    let mut rejected_ids: Vec<u64> = Vec::new();
    let mut dispatches = 0u64;
    let mut coalesced_requests = 0u64;
    let spans = cfg.spans.clone();
    let mut span_buf: Vec<Span> = Vec::new();
    let mut sampler = cfg.timeline.as_ref().map(Sampler::new);
    let mut busy_prev = if sampler.is_some() {
        disk.member_busy_ns()
    } else {
        Vec::new()
    };
    // Exact time-weighted depth integral: advanced to each arrival and
    // each dispatch instant with the depth that held since the previous
    // event. Integer arithmetic keeps it bit-deterministic.
    let mut depth_ns = 0u128;
    let mut last_event = SimTime::ZERO;
    let mut integrate =
        |depth: usize, upto: SimTime, last: &mut SimTime, sampler: &mut Option<Sampler>| {
            depth_ns += depth as u128 * u128::from(upto.since(*last).as_ns());
            if let Some(s) = sampler {
                s.observe_depth(depth, *last, upto);
            }
            *last = upto;
        };

    let mut now = SimTime::ZERO;
    let mut next = 0usize;
    let mut rounds = 0u64;
    let mut batch: Vec<(Request, SimTime)> = Vec::new();
    let mut results: Vec<Completion> = Vec::new();

    loop {
        // Admit everything that has arrived by `now`, in trace order.
        while next < records.len() && records[next].arrival <= now {
            let r = &records[next];
            integrate(
                queue.len(),
                r.arrival.max(last_event),
                &mut last_event,
                &mut sampler,
            );
            let queued = Queued {
                id: next as u64,
                arrival: r.arrival,
                request: r.request,
            };
            if queue.offer(queued).is_err() {
                rejected_ids.push(next as u64);
                if let Some(s) = &mut sampler {
                    s.observe_rejection(r.arrival);
                }
                if let Some(rec) = &spans {
                    record_rejection(rec, next as u64, r, queue.limit());
                }
            }
            next += 1;
        }
        if queue.is_empty() {
            match records.get(next) {
                Some(r) => {
                    // Idle: jump the clock to the next arrival.
                    now = now.max(r.arrival);
                    continue;
                }
                None => break,
            }
        }
        // One scheduling round, issued at `now`.
        integrate(queue.len(), now, &mut last_event, &mut sampler);
        let round = sched.select(queue.entries_mut(), cfg.max_batch);
        assert!(!round.is_empty(), "scheduler made no progress");
        batch.clear();
        batch.extend(round.iter().map(|d| (d.request, now)));
        results.clear();
        match &spans {
            // With spans on, issue the round's commands one at a time so
            // the drive-level bridge parents each command's spans under
            // the dispatch span of its primary (first-listed) request.
            // The batched service path is documented to equal serial
            // calls, so completions are unchanged.
            Some(rec) => {
                for (k, d) in round.iter().enumerate() {
                    let did = span::derive_id(rec.salt(), span::kind::DISPATCH, d.parts[0].id, 0);
                    rec.set_context(did, 1);
                    disk.service_batch_into(&batch[k..k + 1], &mut results);
                }
                rec.clear_context();
            }
            None => disk.service_batch_into(&batch, &mut results),
        }
        dispatches += round.len() as u64;
        let mut round_end = now;
        for (d, c) in round.iter().zip(&results) {
            round_end = round_end.max(c.completion);
            if d.coalesced() {
                coalesced_requests += d.parts.len() as u64;
            }
            for p in &d.parts {
                completions.push(ClientCompletion {
                    id: p.id,
                    arrival: p.arrival,
                    completion: c.completion,
                    coalesced: d.coalesced(),
                });
                if let Some(s) = &mut sampler {
                    s.observe_completion(c.completion, c.completion.since(p.arrival).as_ns());
                }
            }
            if let Some(rec) = &spans {
                record_dispatch(rec, &mut span_buf, d, c, now);
            }
        }
        if let Some(s) = &mut sampler {
            let busy = disk.member_busy_ns();
            let deltas: Vec<u64> = busy
                .iter()
                .enumerate()
                .map(|(m, cur)| cur - busy_prev.get(m).copied().unwrap_or(0))
                .collect();
            s.observe_busy(now, round_end, &deltas);
            busy_prev = busy;
        }
        if let Some(rec) = &spans {
            let id = span::derive_id(rec.salt(), span::kind::ROUND, rounds, 0);
            let mut r = Span::new(id, 0, "round", 0, now.as_ns(), round_end.as_ns());
            r.push_attr("sched", cfg.scheduler.label());
            r.push_attr("cmds", round.len());
            r.push_attr("parts", round.iter().map(|d| d.parts.len()).sum::<usize>());
            rec.record(r);
        }
        rounds += 1;
        now = round_end;
    }

    completions.sort_by_key(|c| c.id);
    let sim_end = completions
        .iter()
        .map(|c| c.completion)
        .fold(SimTime::ZERO, SimTime::max);
    let (timeline, slo) = match sampler {
        Some(s) => {
            let (t, slo) = s.finish(sim_end);
            (Some(t), slo)
        }
        None => (None, None),
    };
    Ok(ServerResult {
        completions,
        rejected_ids,
        max_depth: queue.max_depth(),
        dispatches,
        coalesced_requests,
        wraps: sched.wraps(),
        sim_end,
        timeline,
        slo,
        depth_ns,
    })
}

fn op_label(op: Op) -> &'static str {
    match op {
        Op::Read => "read",
        Op::Write => "write",
    }
}

/// Records the two-span tree of a rejected arrival.
fn record_rejection(rec: &SpanRecorder, id: u64, r: &TraceRecord, limit: usize) {
    let salt = rec.salt();
    let t = r.arrival.as_ns();
    let root_id = span::derive_id(salt, span::kind::REQUEST, id, 0);
    let mut root = Span::new(root_id, 0, "request", 0, t, t);
    root.push_attr("id", id);
    root.push_attr("op", op_label(r.request.op));
    root.push_attr("lbn", r.request.lbn);
    root.push_attr("len", r.request.len);
    root.push_attr("rejected", 1);
    let mut rej = Span::new(
        span::derive_id(salt, span::kind::REJECT, id, 0),
        root_id,
        "reject",
        0,
        t,
        t,
    );
    rej.push_attr("queue_limit", limit);
    rec.record(root);
    rec.record(rej);
}

/// Records the server-side spans of every request a dispatched command
/// served: request root, admit instant, queue wait, and the dispatch
/// span the drive's spans hang under (via the context set at issue).
fn record_dispatch(
    rec: &SpanRecorder,
    buf: &mut Vec<Span>,
    d: &Dispatch,
    c: &Completion,
    at: SimTime,
) {
    let salt = rec.salt();
    let primary = span::derive_id(salt, span::kind::DISPATCH, d.parts[0].id, 0);
    let done = c.completion.as_ns();
    for p in &d.parts {
        let arr = p.arrival.as_ns();
        let root_id = span::derive_id(salt, span::kind::REQUEST, p.id, 0);
        let mut root = Span::new(root_id, 0, "request", 0, arr, done);
        root.push_attr("id", p.id);
        root.push_attr("op", op_label(p.request.op));
        root.push_attr("lbn", p.request.lbn);
        root.push_attr("len", p.request.len);
        buf.push(root);
        buf.push(Span::new(
            span::derive_id(salt, span::kind::ADMIT, p.id, 0),
            root_id,
            "admit",
            0,
            arr,
            arr,
        ));
        buf.push(Span::new(
            span::derive_id(salt, span::kind::QUEUE_WAIT, p.id, 0),
            root_id,
            "queue_wait",
            0,
            arr,
            at.as_ns(),
        ));
        let did = span::derive_id(salt, span::kind::DISPATCH, p.id, 0);
        let mut disp = Span::new(did, root_id, "dispatch", 0, at.as_ns(), done);
        disp.push_attr("cmd_lbn", d.request.lbn);
        disp.push_attr("cmd_len", d.request.len);
        if d.coalesced() {
            disp.push_attr("coalesced", d.parts.len());
        }
        if did != primary {
            // This request rode a coalesced command; the drive's spans
            // hang under the primary's dispatch span, referenced here.
            disp.push_attr("primary", format!("{primary:#x}"));
        }
        buf.push(disp);
    }
    rec.record_all(buf);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_disk::models::quantum_atlas_10k_ii;
    use workloads::replay::{synthetic_trace, SyntheticSpec};

    fn trace(count: usize, interarrival_ms: f64, disk: &Disk) -> Vec<TraceRecord> {
        synthetic_trace(&SyntheticSpec {
            count,
            interarrival_ms,
            io_sectors: 128,
            read_fraction: 0.6,
            capacity_lbns: disk.geometry().capacity_lbns(),
            seed: 17,
        })
    }

    #[test]
    fn every_request_completes_or_is_rejected() {
        let mut disk = Disk::new(quantum_atlas_10k_ii());
        let records = trace(500, 8.0, &disk);
        for kind in [SchedulerKind::Fifo, SchedulerKind::CLook] {
            let mut d = Disk::new(quantum_atlas_10k_ii());
            let res = serve(&mut d, &records, &ServerConfig::new(kind)).unwrap();
            assert_eq!(res.completed() + res.rejected(), 500, "{kind:?}");
            let mut ids: Vec<u64> = res.completions.iter().map(|c| c.id).collect();
            ids.extend(&res.rejected_ids);
            ids.sort_unstable();
            assert_eq!(ids, (0..500).collect::<Vec<_>>(), "each id exactly once");
        }
        let table = ConfidentBoundaries::certain(drive_boundaries(&disk));
        let cfg = ServerConfig::new(SchedulerKind::Traxtent).with_boundaries(table);
        let res = serve(&mut disk, &records, &cfg).unwrap();
        assert_eq!(res.completed() + res.rejected(), 500);
    }

    #[test]
    fn overload_rejects_rather_than_queueing_without_bound() {
        let mut disk = Disk::new(quantum_atlas_10k_ii());
        // ~13 ms per random track-ish request vs 0.2 ms offered
        // interarrival: hopeless overload, the bound must bite.
        let records = trace(2000, 0.2, &disk);
        let mut cfg = ServerConfig::new(SchedulerKind::Fifo);
        cfg.queue_limit = 16;
        let res = serve(&mut disk, &records, &cfg).unwrap();
        assert!(res.rejected() > 0, "overload produces rejections");
        assert!(res.max_depth <= 16, "depth bound respected");
        assert_eq!(res.completed() + res.rejected(), 2000);
    }

    #[test]
    fn traxtent_without_boundaries_is_a_typed_error() {
        let mut disk = Disk::new(quantum_atlas_10k_ii());
        let records = trace(10, 5.0, &disk);
        let err = serve(
            &mut disk,
            &records,
            &ServerConfig::new(SchedulerKind::Traxtent),
        )
        .unwrap_err();
        assert_eq!(err, ServerError::MissingBoundaries);
    }

    #[test]
    fn malformed_traces_are_typed_errors() {
        let mut disk = Disk::new(quantum_atlas_10k_ii());
        let mut records = trace(10, 5.0, &disk);
        records.swap(3, 4);
        let r = serve(&mut disk, &records, &ServerConfig::new(SchedulerKind::Fifo));
        assert!(matches!(r, Err(ServerError::UnsortedArrivals { .. })));

        let mut records = trace(10, 5.0, &disk);
        records[5].request.lbn = disk.geometry().capacity_lbns();
        let r = serve(&mut disk, &records, &ServerConfig::new(SchedulerKind::Fifo));
        assert_eq!(r.unwrap_err(), ServerError::BeyondCapacity { index: 5 });
    }

    #[test]
    fn response_time_includes_queueing_delay() {
        let mut disk = Disk::new(quantum_atlas_10k_ii());
        // Two same-instant arrivals: the second must wait for the first.
        let records = vec![
            TraceRecord {
                arrival: SimTime::ZERO,
                request: Request::read(0, 64),
            },
            TraceRecord {
                arrival: SimTime::ZERO,
                request: Request::read(1_000_000, 64),
            },
        ];
        let mut cfg = ServerConfig::new(SchedulerKind::Fifo);
        cfg.max_batch = 1;
        let res = serve(&mut disk, &records, &cfg).unwrap();
        assert_eq!(res.completed(), 2);
        let a = res.completions[0];
        let b = res.completions[1];
        assert!(b.completion > a.completion);
        assert!(b.response_ms() > a.response_ms());
    }

    #[test]
    fn depth_accounting_is_consistent() {
        let mut disk = Disk::new(quantum_atlas_10k_ii());
        let records = trace(800, 2.0, &disk);
        let res = serve(
            &mut disk,
            &records,
            &ServerConfig::new(SchedulerKind::CLook),
        )
        .unwrap();
        assert!(res.max_depth >= 1);
        assert!(res.mean_depth() > 0.0);
        assert!(res.mean_depth() <= res.max_depth as f64);
        assert!(res.throughput_rps() > 0.0);
    }

    #[test]
    fn metrics_export_lands_in_registry() {
        let mut disk = Disk::new(quantum_atlas_10k_ii());
        let records = trace(100, 5.0, &disk);
        let res = serve(
            &mut disk,
            &records,
            &ServerConfig::new(SchedulerKind::CLook),
        )
        .unwrap();
        let reg = Registry::new();
        res.export_metrics(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.get("server.completed"), Some(res.completed()));
        assert_eq!(snap.get("server.max_depth"), Some(res.max_depth as u64));
    }
}
