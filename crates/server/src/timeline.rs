//! Windowed time-series telemetry for [`crate::serve`] runs.
//!
//! End-of-run percentiles hide *when* things went wrong: a warm-up
//! transient, a burst, a saturation knee all flatten into one number.
//! The [`Sampler`] buckets a run into fixed windows of simulated time
//! and records, per window: completed/rejected request counts, windowed
//! p50/p99 response time, the exact time-weighted mean queue depth, and
//! per-member busy fractions (from the drives' mechanical-occupancy
//! counters). An optional SLO monitor marks each window whose fraction
//! of over-threshold responses exceeds the budgeted fraction — the
//! classic burn-rate formulation: `burn = (over/completed) / budget`,
//! breach when `burn > 1`.
//!
//! Bucketing is start-inclusive on integer nanoseconds: an instant
//! `t` lands in bucket `t / window`, so a completion exactly on a
//! window boundary belongs to the *later* window, and depth/busy
//! intervals are split exactly at boundaries with integer arithmetic —
//! the series is bit-deterministic.
//!
//! ```
//! use server::timeline::{Sampler, TimelineConfig};
//! use sim_disk::SimTime;
//!
//! let cfg = TimelineConfig::new(10.0); // 10 ms windows
//! let mut s = Sampler::new(&cfg);
//! s.observe_completion(SimTime::from_ns(9_999_999), 2_000_000);
//! s.observe_completion(SimTime::from_ns(10_000_000), 2_000_000);
//! let (timeline, _) = s.finish(SimTime::from_ns(20_000_000));
//! assert_eq!(timeline.buckets[0].completed, 1);
//! assert_eq!(timeline.buckets[1].completed, 1, "boundary goes right");
//! ```

use sim_disk::SimTime;
use std::collections::BTreeMap;
use std::fmt;
use traxtent::stats;

/// A latency service-level objective checked per window.
#[derive(Debug, Clone, Copy)]
pub struct SloConfig {
    /// Response-time threshold in milliseconds.
    pub threshold_ms: f64,
    /// Budgeted fraction of responses allowed over the threshold per
    /// window (e.g. `0.01` = 1 %); a window burning more than its budget
    /// is breached.
    pub breach_fraction: f64,
}

/// Configuration of the windowed sampler.
#[derive(Debug, Clone, Copy)]
pub struct TimelineConfig {
    /// Window length in milliseconds of simulated time.
    pub window_ms: f64,
    /// Optional SLO monitor.
    pub slo: Option<SloConfig>,
}

impl TimelineConfig {
    /// A sampler config with the given window and no SLO monitor.
    pub fn new(window_ms: f64) -> Self {
        TimelineConfig {
            window_ms,
            slo: None,
        }
    }

    /// Adds an SLO monitor.
    pub fn with_slo(mut self, threshold_ms: f64, breach_fraction: f64) -> Self {
        self.slo = Some(SloConfig {
            threshold_ms,
            breach_fraction,
        });
        self
    }
}

/// Accumulates per-window observations during a run (see the
/// [module docs](self) for the exact bucketing rules).
#[derive(Debug)]
pub struct Sampler {
    window_ns: u64,
    slo: Option<SloConfig>,
    threshold_ns: u64,
    buckets: Vec<Acc>,
    members: usize,
}

#[derive(Debug, Default, Clone)]
struct Acc {
    completed: u64,
    rejected: u64,
    responses_ms: Vec<f64>,
    depth_ns: u128,
    busy_ns: Vec<u64>,
    over: u64,
}

impl Sampler {
    /// A sampler for the given config. Panics if the window is not a
    /// positive whole number of nanoseconds.
    pub fn new(cfg: &TimelineConfig) -> Self {
        let window_ns = (cfg.window_ms * 1e6).round() as u64;
        assert!(window_ns > 0, "timeline window must be positive");
        let threshold_ns = cfg
            .slo
            .map(|s| (s.threshold_ms * 1e6).round() as u64)
            .unwrap_or(u64::MAX);
        Sampler {
            window_ns,
            slo: cfg.slo,
            threshold_ns,
            buckets: Vec::new(),
            members: 0,
        }
    }

    fn bucket(&mut self, index: usize) -> &mut Acc {
        if index >= self.buckets.len() {
            self.buckets.resize(index + 1, Acc::default());
        }
        &mut self.buckets[index]
    }

    /// Records one completed request: `at` buckets it, `response_ns`
    /// feeds the windowed percentiles and the SLO check.
    pub fn observe_completion(&mut self, at: SimTime, response_ns: u64) {
        let i = (at.as_ns() / self.window_ns) as usize;
        let over = response_ns > self.threshold_ns;
        let b = self.bucket(i);
        b.completed += 1;
        b.responses_ms.push(response_ns as f64 / 1e6);
        if over {
            b.over += 1;
        }
    }

    /// Records one rejected arrival.
    pub fn observe_rejection(&mut self, at: SimTime) {
        let i = (at.as_ns() / self.window_ns) as usize;
        self.bucket(i).rejected += 1;
    }

    /// Integrates queue depth `depth` held over `[from, to)`, split
    /// exactly at window boundaries.
    pub fn observe_depth(&mut self, depth: usize, from: SimTime, to: SimTime) {
        let (mut cur, end) = (from.as_ns(), to.as_ns());
        let w = self.window_ns;
        while cur < end {
            let i = (cur / w) as usize;
            let seg_end = end.min((cur / w + 1) * w);
            self.bucket(i).depth_ns += u128::from(depth as u64) * u128::from(seg_end - cur);
            cur = seg_end;
        }
    }

    /// Attributes each member's busy-time delta to the windows
    /// overlapping `[from, to)`, proportionally by integer overlap (the
    /// rounding remainder lands in the last overlapped window, so the
    /// deltas are conserved exactly).
    pub fn observe_busy(&mut self, from: SimTime, to: SimTime, deltas: &[u64]) {
        self.members = self.members.max(deltas.len());
        let (start, end) = (from.as_ns(), to.as_ns());
        let w = self.window_ns;
        let total = end.saturating_sub(start);
        if total == 0 {
            let i = (start / w) as usize;
            let b = self.bucket(i);
            grow(&mut b.busy_ns, deltas.len());
            for (m, d) in deltas.iter().enumerate() {
                b.busy_ns[m] += d;
            }
            return;
        }
        let mut cur = start;
        let mut given = vec![0u64; deltas.len()];
        while cur < end {
            let i = (cur / w) as usize;
            let seg_end = end.min((cur / w + 1) * w);
            let last = seg_end == end;
            let b = self.bucket(i);
            grow(&mut b.busy_ns, deltas.len());
            for (m, d) in deltas.iter().enumerate() {
                let share = if last {
                    d - given[m]
                } else {
                    d * (seg_end - cur) / total
                };
                b.busy_ns[m] += share;
                given[m] += share;
            }
            cur = seg_end;
        }
    }

    /// Closes the series at `sim_end` and renders the timeline plus the
    /// SLO breach summary (when an SLO was configured).
    pub fn finish(self, sim_end: SimTime) -> (Timeline, Option<SloSummary>) {
        let w = self.window_ns;
        let end_ns = sim_end.as_ns();
        // Cover [0, sim_end) even if the tail windows saw no events.
        let want = if end_ns == 0 {
            self.buckets.len()
        } else {
            self.buckets.len().max(end_ns.div_ceil(w) as usize)
        };
        let mut accs = self.buckets;
        accs.resize(want, Acc::default());
        let mut buckets = Vec::with_capacity(accs.len());
        for (i, acc) in accs.into_iter().enumerate() {
            let start_ns = i as u64 * w;
            // The last window may be cut short by sim_end; depth and busy
            // fractions use the covered length so they stay exact.
            let span_ns = if end_ns > start_ns {
                (end_ns - start_ns).min(w)
            } else {
                w
            };
            let mut busy_frac = vec![0.0; self.members];
            for (m, ns) in acc.busy_ns.iter().enumerate() {
                busy_frac[m] = *ns as f64 / span_ns as f64;
            }
            let (p50_ms, p99_ms) = if acc.responses_ms.is_empty() {
                (0.0, 0.0)
            } else {
                (
                    stats::percentile(&acc.responses_ms, 0.5),
                    stats::percentile(&acc.responses_ms, 0.99),
                )
            };
            let burn_rate = match self.slo {
                Some(slo) if acc.completed > 0 => {
                    (acc.over as f64 / acc.completed as f64) / slo.breach_fraction
                }
                _ => 0.0,
            };
            buckets.push(TimelineBucket {
                start_ms: start_ns as f64 / 1e6,
                completed: acc.completed,
                rejected: acc.rejected,
                p50_ms,
                p99_ms,
                mean_depth: acc.depth_ns as f64 / span_ns as f64,
                busy_frac,
                slo_over: acc.over,
                burn_rate,
            });
        }
        let timeline = Timeline {
            window_ms: w as f64 / 1e6,
            buckets,
        };
        let summary = self.slo.map(|slo| {
            let breached: Vec<&TimelineBucket> = timeline
                .buckets
                .iter()
                .filter(|b| b.burn_rate > 1.0)
                .collect();
            SloSummary {
                threshold_ms: slo.threshold_ms,
                windows: timeline.buckets.len() as u64,
                breached: breached.len() as u64,
                first_breach_ms: breached.first().map(|b| b.start_ms),
                worst_burn_rate: timeline
                    .buckets
                    .iter()
                    .map(|b| b.burn_rate)
                    .fold(0.0, f64::max),
                total_over: timeline.buckets.iter().map(|b| b.slo_over).sum(),
            }
        });
        (timeline, summary)
    }
}

fn grow(v: &mut Vec<u64>, len: usize) {
    if v.len() < len {
        v.resize(len, 0);
    }
}

/// One window of the series.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineBucket {
    /// Window start in milliseconds of simulated time.
    pub start_ms: f64,
    /// Requests completed in this window.
    pub completed: u64,
    /// Arrivals rejected in this window.
    pub rejected: u64,
    /// Windowed median response time (0 with no completions).
    pub p50_ms: f64,
    /// Windowed 99th-percentile response time (0 with no completions).
    pub p99_ms: f64,
    /// Exact time-weighted mean queue depth over the window.
    pub mean_depth: f64,
    /// Per-member mechanical busy fraction (empty if never observed).
    pub busy_frac: Vec<f64>,
    /// Responses over the SLO threshold (0 without an SLO).
    pub slo_over: u64,
    /// `(over/completed) / breach_fraction`; breached when > 1.
    pub burn_rate: f64,
}

impl TimelineBucket {
    /// The bucket as a flat numeric row (for manifest export): fixed keys
    /// plus `busy_m0..busy_mN`.
    pub fn row(&self) -> BTreeMap<String, f64> {
        let mut row = BTreeMap::new();
        row.insert("start_ms".to_string(), self.start_ms);
        row.insert("completed".to_string(), self.completed as f64);
        row.insert("rejected".to_string(), self.rejected as f64);
        row.insert("p50_ms".to_string(), self.p50_ms);
        row.insert("p99_ms".to_string(), self.p99_ms);
        row.insert("mean_depth".to_string(), self.mean_depth);
        for (m, f) in self.busy_frac.iter().enumerate() {
            row.insert(format!("busy_m{m}"), *f);
        }
        row.insert("slo_over".to_string(), self.slo_over as f64);
        row.insert("burn_rate".to_string(), self.burn_rate);
        row
    }
}

/// The whole windowed series of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline {
    /// Window length in milliseconds.
    pub window_ms: f64,
    /// The windows, in time order, covering `[0, sim_end)`.
    pub buckets: Vec<TimelineBucket>,
}

impl Timeline {
    /// Flat numeric rows for manifest export, one per window.
    pub fn rows(&self) -> Vec<BTreeMap<String, f64>> {
        self.buckets.iter().map(TimelineBucket::row).collect()
    }
}

impl fmt::Display for Timeline {
    /// A fixed-width table, one line per window.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>9} {:>6} {:>4} {:>9} {:>9} {:>7} {:>5} {:>6}  busy",
            "start_ms", "done", "rej", "p50_ms", "p99_ms", "depth", "over", "burn"
        )?;
        for b in &self.buckets {
            let busy = b
                .busy_frac
                .iter()
                .map(|x| format!("{x:.2}"))
                .collect::<Vec<_>>()
                .join(",");
            writeln!(
                f,
                "{:>9.1} {:>6} {:>4} {:>9.3} {:>9.3} {:>7.2} {:>5} {:>6.2}  {}",
                b.start_ms,
                b.completed,
                b.rejected,
                b.p50_ms,
                b.p99_ms,
                b.mean_depth,
                b.slo_over,
                b.burn_rate,
                busy
            )?;
        }
        Ok(())
    }
}

/// End-of-run SLO verdict: how many windows burned through their budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSummary {
    /// The response-time threshold that was monitored, milliseconds.
    pub threshold_ms: f64,
    /// Number of windows in the series.
    pub windows: u64,
    /// Windows whose burn rate exceeded 1.
    pub breached: u64,
    /// Start of the first breached window, if any, milliseconds.
    pub first_breach_ms: Option<f64>,
    /// The worst per-window burn rate observed.
    pub worst_burn_rate: f64,
    /// Total responses over the threshold across the run.
    pub total_over: u64,
}

impl fmt::Display for SloSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "slo {}ms: {}/{} windows breached, worst burn {:.2}, {} over",
            self.threshold_ms, self.breached, self.windows, self.worst_burn_rate, self.total_over
        )?;
        if let Some(at) = self.first_breach_ms {
            write!(f, ", first at {at:.1} ms")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: f64) -> SimTime {
        SimTime::from_ns((x * 1e6).round() as u64)
    }

    #[test]
    fn boundary_instants_bucket_rightward() {
        let mut s = Sampler::new(&TimelineConfig::new(10.0));
        s.observe_completion(ms(0.0), 1_000_000);
        s.observe_completion(ms(9.999999), 1_000_000);
        s.observe_completion(ms(10.0), 1_000_000);
        s.observe_rejection(ms(20.0));
        let (t, slo) = s.finish(ms(30.0));
        assert!(slo.is_none());
        assert_eq!(t.buckets.len(), 3);
        assert_eq!(t.buckets[0].completed, 2);
        assert_eq!(t.buckets[1].completed, 1);
        assert_eq!(t.buckets[2].rejected, 1);
    }

    #[test]
    fn depth_integral_splits_exactly_at_boundaries() {
        let mut s = Sampler::new(&TimelineConfig::new(10.0));
        // Depth 2 held over [5 ms, 25 ms): 5 ms in w0, 10 ms in w1, 5 ms in w2.
        s.observe_depth(2, ms(5.0), ms(25.0));
        let (t, _) = s.finish(ms(30.0));
        assert_eq!(t.buckets[0].mean_depth, 2.0 * 0.5);
        assert_eq!(t.buckets[1].mean_depth, 2.0);
        assert_eq!(t.buckets[2].mean_depth, 2.0 * 0.5);
    }

    #[test]
    fn short_final_window_uses_its_covered_length() {
        let mut s = Sampler::new(&TimelineConfig::new(10.0));
        s.observe_depth(3, ms(10.0), ms(15.0));
        let (t, _) = s.finish(ms(15.0));
        assert_eq!(t.buckets.len(), 2);
        assert_eq!(t.buckets[1].mean_depth, 3.0, "5 ms window fully at depth 3");
    }

    #[test]
    fn busy_deltas_are_conserved_across_windows() {
        let mut s = Sampler::new(&TimelineConfig::new(10.0));
        // 7 ms of busy on member 0, 3 on member 1, over [5, 25) ms.
        let deltas = [7_000_000u64, 3_000_001];
        s.observe_busy(ms(5.0), ms(25.0), &deltas);
        let (t, _) = s.finish(ms(30.0));
        for (m, delta) in deltas.iter().enumerate() {
            let total_frac_ns: u64 = t
                .buckets
                .iter()
                .map(|b| (b.busy_frac[m] * 10_000_000.0).round() as u64)
                .sum();
            assert_eq!(total_frac_ns, *delta, "member {m} conserved");
        }
        assert!(t.buckets.iter().all(|b| b.busy_frac.len() == 2));
    }

    #[test]
    fn slo_burn_rate_flags_breached_windows() {
        let cfg = TimelineConfig::new(10.0).with_slo(5.0, 0.25);
        let mut s = Sampler::new(&cfg);
        // Window 0: 1 of 4 over (burn = 1.0, not breached).
        for r in [1.0, 2.0, 3.0, 9.0] {
            s.observe_completion(ms(1.0), (r * 1e6) as u64);
        }
        // Window 1: 2 of 4 over (burn = 2.0, breached).
        for r in [1.0, 6.0, 7.0, 2.0] {
            s.observe_completion(ms(11.0), (r * 1e6) as u64);
        }
        let (t, slo) = s.finish(ms(20.0));
        let slo = slo.unwrap();
        assert_eq!(t.buckets[0].slo_over, 1);
        assert_eq!(t.buckets[0].burn_rate, 1.0);
        assert_eq!(t.buckets[1].burn_rate, 2.0);
        assert_eq!(slo.breached, 1);
        assert_eq!(slo.first_breach_ms, Some(10.0));
        assert_eq!(slo.worst_burn_rate, 2.0);
        assert_eq!(slo.total_over, 3);
        assert!(slo.to_string().contains("1/2 windows breached"));
    }

    #[test]
    fn rows_and_display_render_every_window() {
        let mut s = Sampler::new(&TimelineConfig::new(10.0));
        s.observe_completion(ms(1.0), 2_000_000);
        s.observe_busy(ms(0.0), ms(10.0), &[4_000_000]);
        let (t, _) = s.finish(ms(10.0));
        let rows = t.rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0]["completed"], 1.0);
        assert_eq!(rows[0]["busy_m0"], 0.4);
        let text = t.to_string();
        assert!(text.contains("p99_ms"), "{text}");
        assert_eq!(text.lines().count(), 2);
    }
}
