//! Pluggable I/O schedulers: FIFO, C-LOOK, and the traxtent-aware
//! batcher.
//!
//! A scheduler's job is purely combinatorial: given the queued client
//! requests, pick which to dispatch next and as which disk commands. The
//! server loop owns time; schedulers never see the clock, which keeps
//! their invariants (exactly-once dispatch, bounded starvation, batches
//! inside trusted tracks) testable without a drive.
//!
//! * [`Fifo`] dispatches in arrival order — the baseline, maximally fair
//!   and maximally seek-bound;
//! * [`CLook`] runs a circular elevator: ascending LBN sweeps that wrap
//!   to the lowest pending request when the sweep runs dry;
//! * [`Traxtent`] rides the C-LOOK sweep but, on tracks whose extracted
//!   boundary is trusted (per [`ConfidentBoundaries`]), gathers every
//!   queued request on the anchor's track and coalesces adjacent same-op
//!   runs into single track-aligned disk commands — never building a
//!   command that crosses the track boundary. On low-confidence tracks it
//!   degrades to plain C-LOOK, mirroring how the allocator degrades to
//!   untracked placement.

use crate::admission::Queued;
use sim_disk::disk::Request;
use traxtent::ConfidentBoundaries;

/// One disk command plus the client requests it serves.
///
/// FIFO and C-LOOK always map one client request to one command; the
/// traxtent batcher may merge several contiguous same-op client requests
/// into one command, in which case every part completes when the merged
/// command completes.
#[derive(Debug, Clone)]
pub struct Dispatch {
    /// The (possibly coalesced) request handed to the drive.
    pub request: Request,
    /// The client requests this command serves, in ascending-LBN order.
    pub parts: Vec<Queued>,
}

impl Dispatch {
    fn single(q: Queued) -> Self {
        Dispatch {
            request: q.request,
            parts: vec![q],
        }
    }

    /// Whether this command serves more than one client request.
    pub fn coalesced(&self) -> bool {
        self.parts.len() > 1
    }
}

/// A dispatch policy over the admission queue.
pub trait Scheduler {
    /// Removes up to `max_batch` client requests from `pending` and
    /// returns the disk commands to issue, in issue order. Must make
    /// progress: returns at least one dispatch whenever `pending` is
    /// non-empty.
    fn select(&mut self, pending: &mut Vec<Queued>, max_batch: usize) -> Vec<Dispatch>;

    /// Completed sweep wrap-arounds so far (always 0 for FIFO).
    fn wraps(&self) -> u64 {
        0
    }
}

/// Which scheduler the server runs; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    /// Arrival-order dispatch.
    Fifo,
    /// Circular elevator (ascending sweeps, wrap at the top).
    CLook,
    /// C-LOOK plus track-aligned coalescing on trusted tracks.
    Traxtent,
}

impl SchedulerKind {
    /// Stable lowercase label for output rows and manifests.
    pub fn label(self) -> &'static str {
        match self {
            SchedulerKind::Fifo => "fifo",
            SchedulerKind::CLook => "clook",
            SchedulerKind::Traxtent => "traxtent",
        }
    }

    /// All kinds, in the order figures print them.
    pub const ALL: [SchedulerKind; 3] = [
        SchedulerKind::Fifo,
        SchedulerKind::CLook,
        SchedulerKind::Traxtent,
    ];
}

/// Removes the entries at `indices` (which must be distinct and in
/// bounds), returning them in index-list order while preserving the
/// relative order of the survivors.
fn take_indices(pending: &mut Vec<Queued>, indices: &[usize]) -> Vec<Queued> {
    let taken: Vec<Queued> = indices.iter().map(|&i| pending[i]).collect();
    let mut marked = vec![false; pending.len()];
    for &i in indices {
        debug_assert!(!marked[i], "duplicate dispatch index");
        marked[i] = true;
    }
    let mut j = 0;
    pending.retain(|_| {
        let m = marked[j];
        j += 1;
        !m
    });
    taken
}

/// Indices of up to `max_batch` pending requests along the ascending
/// sweep from `*pos`, ordered by `(lbn, id)`. When nothing lies at or
/// above `*pos` the sweep wraps: `*wraps` is incremented and selection
/// restarts from the lowest pending LBN.
fn sweep_indices(
    pending: &[Queued],
    pos: &mut u64,
    wraps: &mut u64,
    max_batch: usize,
) -> Vec<usize> {
    if pending.is_empty() {
        return Vec::new();
    }
    let mut order: Vec<usize> = (0..pending.len()).collect();
    order.sort_by_key(|&i| (pending[i].request.lbn, pending[i].id));
    let start = match order.iter().position(|&i| pending[i].request.lbn >= *pos) {
        Some(s) => s,
        None => {
            *wraps += 1;
            *pos = 0;
            0
        }
    };
    order[start..].iter().take(max_batch).copied().collect()
}

/// Arrival-order dispatch.
#[derive(Debug, Default)]
pub struct Fifo;

impl Scheduler for Fifo {
    fn select(&mut self, pending: &mut Vec<Queued>, max_batch: usize) -> Vec<Dispatch> {
        let n = max_batch.min(pending.len());
        pending.drain(..n).map(Dispatch::single).collect()
    }
}

/// Circular elevator: ascending-LBN sweeps, wrapping to the lowest
/// pending request when nothing remains above the head position.
///
/// Starvation is bounded: a queued request is dispatched within two
/// wrap-arounds of its admission, because the sweep position never
/// passes a pending request's LBN without dispatching it.
#[derive(Debug, Default)]
pub struct CLook {
    pos: u64,
    wraps: u64,
}

impl CLook {
    /// A fresh elevator starting at LBN 0.
    pub fn new() -> Self {
        CLook::default()
    }
}

impl Scheduler for CLook {
    fn select(&mut self, pending: &mut Vec<Queued>, max_batch: usize) -> Vec<Dispatch> {
        let idx = sweep_indices(pending, &mut self.pos, &mut self.wraps, max_batch);
        let taken = take_indices(pending, &idx);
        if let Some(last) = taken.last() {
            self.pos = last.request.lbn;
        }
        taken.into_iter().map(Dispatch::single).collect()
    }

    fn wraps(&self) -> u64 {
        self.wraps
    }
}

/// C-LOOK plus track-aligned coalescing on trusted tracks.
#[derive(Debug)]
pub struct Traxtent {
    pos: u64,
    wraps: u64,
    boundaries: ConfidentBoundaries,
    threshold: f64,
}

impl Traxtent {
    /// A traxtent batcher over the given boundary table; tracks whose
    /// confidence is below `threshold` are treated as unknown and served
    /// with plain C-LOOK.
    pub fn new(boundaries: ConfidentBoundaries, threshold: f64) -> Self {
        Traxtent {
            pos: 0,
            wraps: 0,
            boundaries,
            threshold,
        }
    }

    /// Merges ascending same-track client requests into contiguous
    /// same-op disk commands. Only exactly adjacent requests merge;
    /// overlapping or gapped neighbours stay separate commands (still
    /// within the track).
    fn coalesce(taken: Vec<Queued>) -> Vec<Dispatch> {
        let mut out: Vec<Dispatch> = Vec::new();
        for q in taken {
            if let Some(d) = out.last_mut() {
                if d.request.op == q.request.op && d.request.lbn + d.request.len == q.request.lbn {
                    d.request.len += q.request.len;
                    d.parts.push(q);
                    continue;
                }
            }
            out.push(Dispatch::single(q));
        }
        out
    }
}

impl Scheduler for Traxtent {
    fn select(&mut self, pending: &mut Vec<Queued>, max_batch: usize) -> Vec<Dispatch> {
        let anchor_idx = sweep_indices(pending, &mut self.pos, &mut self.wraps, 1);
        let Some(&a) = anchor_idx.first() else {
            return Vec::new();
        };
        let anchor = pending[a].request;
        let table = self.boundaries.table();
        let (track_start, track_end) = table.track_bounds(anchor.lbn);
        let track = table.track_index(anchor.lbn);
        let trusted = self.boundaries.is_confident(track, self.threshold);
        let in_track = anchor.lbn + anchor.len <= track_end;
        if !(trusted && in_track) {
            // Unknown boundary (or a client request that itself straddles
            // one): no coalescing is safe, serve this round as C-LOOK.
            let idx = sweep_indices(pending, &mut self.pos, &mut self.wraps, max_batch);
            let taken = take_indices(pending, &idx);
            if let Some(last) = taken.last() {
                self.pos = last.request.lbn;
            }
            return taken.into_iter().map(Dispatch::single).collect();
        }
        // Trusted track: gather every queued request lying entirely on
        // the anchor's track (up to the batch bound) and coalesce.
        let mut idx: Vec<usize> = (0..pending.len())
            .filter(|&i| {
                let r = pending[i].request;
                r.lbn >= track_start && r.lbn + r.len <= track_end
            })
            .collect();
        idx.sort_by_key(|&i| (pending[i].request.lbn, pending[i].id));
        idx.truncate(max_batch);
        let taken = take_indices(pending, &idx);
        self.pos = taken.last().expect("anchor is always gathered").request.lbn;
        Traxtent::coalesce(taken)
    }

    fn wraps(&self) -> u64 {
        self.wraps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_disk::SimTime;
    use traxtent::TrackBoundaries;

    fn q(id: u64, lbn: u64, len: u64) -> Queued {
        Queued {
            id,
            arrival: SimTime::from_ns(id),
            request: Request::read(lbn, len),
        }
    }

    fn qw(id: u64, lbn: u64, len: u64) -> Queued {
        Queued {
            id,
            arrival: SimTime::from_ns(id),
            request: Request::write(lbn, len),
        }
    }

    #[test]
    fn fifo_dispatches_in_arrival_order() {
        let mut pending = vec![q(0, 900, 8), q(1, 100, 8), q(2, 500, 8)];
        let ds = Fifo.select(&mut pending, 2);
        assert_eq!(ds.iter().map(|d| d.parts[0].id).collect::<Vec<_>>(), [0, 1]);
        assert_eq!(pending.len(), 1);
    }

    #[test]
    fn clook_sweeps_ascending_and_wraps() {
        let mut sched = CLook::new();
        let mut pending = vec![q(0, 900, 8), q(1, 100, 8), q(2, 500, 8)];
        let ds = sched.select(&mut pending, 2);
        assert_eq!(
            ds.iter().map(|d| d.request.lbn).collect::<Vec<_>>(),
            [100, 500]
        );
        assert_eq!(sched.wraps(), 0);
        // 900 is still ahead: same sweep, no wrap.
        let ds = sched.select(&mut pending, 2);
        assert_eq!(ds[0].request.lbn, 900);
        assert_eq!(sched.wraps(), 0);
        // Now only a low request remains: the sweep must wrap once.
        pending.push(q(3, 50, 8));
        let ds = sched.select(&mut pending, 2);
        assert_eq!(ds[0].request.lbn, 50);
        assert_eq!(sched.wraps(), 1);
    }

    #[test]
    fn traxtent_coalesces_contiguous_same_op_runs_within_a_track() {
        // One 100-sector track starting at 0, another at 100.
        let table = TrackBoundaries::uniform(4, 100);
        let mut sched = Traxtent::new(ConfidentBoundaries::certain(table), 0.9);
        let mut pending = vec![
            q(0, 0, 25),
            q(1, 25, 25),
            qw(2, 50, 25), // op changes: breaks the run
            q(3, 75, 25),
            q(4, 100, 10), // next track: not gathered this round
        ];
        let ds = sched.select(&mut pending, 16);
        assert_eq!(ds.len(), 3);
        assert_eq!((ds[0].request.lbn, ds[0].request.len), (0, 50));
        assert!(ds[0].coalesced());
        assert_eq!(ds[0].parts.iter().map(|p| p.id).collect::<Vec<_>>(), [0, 1]);
        assert_eq!((ds[1].request.lbn, ds[1].request.len), (50, 25));
        assert_eq!((ds[2].request.lbn, ds[2].request.len), (75, 25));
        assert_eq!(pending.len(), 1, "the next-track request stays queued");
    }

    #[test]
    fn traxtent_degrades_to_clook_on_low_confidence_tracks() {
        let table = TrackBoundaries::uniform(4, 100);
        let conf = ConfidentBoundaries::new(table, vec![0.2, 1.0, 1.0, 1.0]).unwrap();
        let mut sched = Traxtent::new(conf, 0.9);
        let mut pending = vec![q(0, 0, 25), q(1, 25, 25), q(2, 120, 10)];
        let ds = sched.select(&mut pending, 16);
        // Anchor lands on the untrusted track 0: C-LOOK round, no merge.
        assert_eq!(ds.len(), 3);
        assert!(ds.iter().all(|d| !d.coalesced()));
    }

    #[test]
    fn traxtent_never_merges_across_the_track_boundary() {
        let table = TrackBoundaries::uniform(4, 100);
        let mut sched = Traxtent::new(ConfidentBoundaries::certain(table), 0.9);
        // Contiguous run that spans the 100-boundary as two aligned halves.
        let mut pending = vec![q(0, 60, 40), q(1, 100, 40)];
        let ds = sched.select(&mut pending, 16);
        assert_eq!(ds.len(), 1, "only the track-0 half is gathered");
        assert_eq!((ds[0].request.lbn, ds[0].request.len), (60, 40));
        let ds = sched.select(&mut pending, 16);
        assert_eq!((ds[0].request.lbn, ds[0].request.len), (100, 40));
    }
}
