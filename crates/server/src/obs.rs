//! Bridging drive trace events into causal spans.
//!
//! The drive engine already narrates every command as a stream of
//! [`TraceEvent`]s (issue, queue, seek, rotational wait, media, bus,
//! fault, complete). [`DiskSpanBridge`] is a [`TraceSink`] that folds
//! that stream into [`Span`]s parented under whatever causal context the
//! layer above has set on the shared [`SpanRecorder`] — the dispatch
//! span of a server round, or the per-member command span of a volume.
//! Install it as (one fan-out arm of) the drive's tracer and every
//! serviced command becomes a `disk_cmd` span with one child span per
//! service phase.
//!
//! Commands serviced while the context parent is 0 — extraction traffic,
//! verification reads, anything not issued on behalf of a request — are
//! deliberately skipped, so span trees contain exactly the request path.
//!
//! Determinism: span ids derive from the drive's own request sequence
//! number and the recorder salt, and events for one command arrive as
//! one contiguous batch under the tracer lock, so the bridge needs no
//! per-drive state and the output is byte-identical at any `--threads`.

use sim_disk::disk::Op;
use sim_disk::trace::{TraceEvent, TraceSink};
use traxtent::obs::span::{self, Span, SpanRecorder};

/// A [`TraceSink`] converting one drive's trace stream into spans (see
/// the [module docs](self)).
pub struct DiskSpanBridge {
    rec: SpanRecorder,
    open: Option<OpenCmd>,
    scratch: Vec<Span>,
}

/// The command currently being narrated (drive events for one command
/// arrive contiguously: `Issue` first, `Complete` last).
struct OpenCmd {
    rid: u64,
    span_id: u64,
    parent: u64,
    track: u32,
    start_ns: u64,
    phases: u64,
}

impl DiskSpanBridge {
    /// A bridge recording into `rec`.
    pub fn new(rec: SpanRecorder) -> Self {
        DiskSpanBridge {
            rec,
            open: None,
            scratch: Vec::new(),
        }
    }

    fn phase(&mut self, rid: u64, name: &str, t: u64, dur: u64) -> Option<&mut Span> {
        let open = self.open.as_mut().filter(|o| o.rid == rid)?;
        let id = span::derive_id(
            self.rec.salt(),
            span::kind::PHASE,
            open.span_id,
            open.phases,
        );
        open.phases += 1;
        self.scratch
            .push(Span::new(id, open.span_id, name, open.track, t, t + dur));
        self.scratch.last_mut()
    }
}

fn op_label(op: Op) -> &'static str {
    match op {
        Op::Read => "read",
        Op::Write => "write",
    }
}

impl TraceSink for DiskSpanBridge {
    fn record(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::Issue { req, t, .. } => {
                let (parent, track) = self.rec.context();
                self.scratch.clear();
                self.open = (parent != 0).then(|| OpenCmd {
                    rid: *req,
                    span_id: span::derive_id(
                        self.rec.salt(),
                        span::kind::DISK_CMD,
                        u64::from(track),
                        *req,
                    ),
                    parent,
                    track,
                    start_ns: *t,
                    phases: 0,
                });
            }
            TraceEvent::Queue { req, t, dur } => {
                self.phase(*req, "drive_queue", *t, *dur);
            }
            TraceEvent::Seek {
                req,
                t,
                dur,
                from_cyl,
                to_cyl,
            } => {
                if let Some(s) = self.phase(*req, "seek", *t, *dur) {
                    s.push_attr("from_cyl", from_cyl);
                    s.push_attr("to_cyl", to_cyl);
                }
            }
            TraceEvent::HeadSwitch { req, t, dur } => {
                self.phase(*req, "head_switch", *t, *dur);
            }
            TraceEvent::Settle { req, t, dur } => {
                self.phase(*req, "settle", *t, *dur);
            }
            TraceEvent::RotWait { req, t, dur, track } => {
                if let Some(s) = self.phase(*req, "rot_wait", *t, *dur) {
                    s.push_attr("track", track);
                }
            }
            TraceEvent::Media {
                req,
                t,
                dur,
                track,
                sectors,
            } => {
                if let Some(s) = self.phase(*req, "media", *t, *dur) {
                    s.push_attr("track", track);
                    s.push_attr("sectors", sectors);
                }
            }
            TraceEvent::CacheHit { req, t, lbn, len } => {
                if let Some(s) = self.phase(*req, "cache_hit", *t, 0) {
                    s.push_attr("lbn", lbn);
                    s.push_attr("len", len);
                }
            }
            TraceEvent::CacheFill { req, t, start, end } => {
                if let Some(s) = self.phase(*req, "cache_fill", *t, 0) {
                    s.push_attr("start", start);
                    s.push_attr("end", end);
                }
            }
            TraceEvent::Bus { req, t, dur, bytes } => {
                if let Some(s) = self.phase(*req, "bus", *t, *dur) {
                    s.push_attr("bytes", bytes);
                }
            }
            TraceEvent::Fault {
                req,
                t,
                dur,
                kind,
                lbn,
            } => {
                if let Some(s) = self.phase(*req, "fault", *t, *dur) {
                    s.push_attr("kind", kind);
                    s.push_attr("lbn", lbn);
                }
            }
            TraceEvent::ScsiCommand { .. } => {}
            TraceEvent::Complete {
                req,
                t,
                op,
                lbn,
                len,
                cache_hit,
                ..
            } => {
                if let Some(open) = self.open.take_if(|o| o.rid == *req) {
                    let mut cmd = Span::new(
                        open.span_id,
                        open.parent,
                        "disk_cmd",
                        open.track,
                        open.start_ns,
                        *t,
                    );
                    cmd.push_attr("op", op_label(*op));
                    cmd.push_attr("lbn", lbn);
                    cmd.push_attr("len", len);
                    if *cache_hit {
                        cmd.push_attr("cache_hit", 1);
                    }
                    self.scratch.push(cmd);
                    self.rec.record_all(&mut self.scratch);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_disk::trace::Tracer;

    fn drive_events(rid: u64) -> Vec<TraceEvent> {
        vec![
            TraceEvent::Issue {
                req: rid,
                t: 100,
                op: Op::Read,
                lbn: 0,
                len: 8,
            },
            TraceEvent::Seek {
                req: rid,
                t: 100,
                dur: 40,
                from_cyl: 0,
                to_cyl: 3,
            },
            TraceEvent::Media {
                req: rid,
                t: 140,
                dur: 60,
                track: 6,
                sectors: 8,
            },
            TraceEvent::Complete {
                req: rid,
                t: 200,
                op: Op::Read,
                lbn: 0,
                len: 8,
                cache_hit: false,
                queue: 0,
                overhead: 0,
                seek: 40,
                head_switch: 0,
                rot_latency: 0,
                media: 60,
                bus: 0,
                write_settle: 0,
                response: 100,
            },
        ]
    }

    #[test]
    fn commands_under_a_context_become_span_trees() {
        let rec = SpanRecorder::new();
        rec.set_salt(9);
        rec.set_context(0xAB, 2);
        let tracer = Tracer::from_sink(DiskSpanBridge::new(rec.clone()));
        tracer.record_all(&drive_events(7));
        let spans = rec.take_sorted();
        assert_eq!(spans.len(), 3, "disk_cmd + 2 phases");
        let cmd = spans.iter().find(|s| s.name == "disk_cmd").unwrap();
        assert_eq!(cmd.parent, 0xAB);
        assert_eq!(cmd.track, 2);
        assert_eq!((cmd.start_ns, cmd.end_ns), (100, 200));
        assert_eq!(cmd.attr("op"), Some("read"));
        for s in spans.iter().filter(|s| s.name != "disk_cmd") {
            assert_eq!(s.parent, cmd.id, "phases parent under the command");
            assert_eq!(s.track, 2);
        }
        let seek = spans.iter().find(|s| s.name == "seek").unwrap();
        assert_eq!(seek.attr("to_cyl"), Some("3"));
    }

    #[test]
    fn commands_without_a_context_are_skipped() {
        let rec = SpanRecorder::new();
        let tracer = Tracer::from_sink(DiskSpanBridge::new(rec.clone()));
        tracer.record_all(&drive_events(7));
        assert!(rec.is_empty(), "extraction/verification traffic is skipped");
    }

    #[test]
    fn bridge_ids_are_deterministic_per_drive_sequence() {
        let run = || {
            let rec = SpanRecorder::new();
            rec.set_salt(4);
            rec.set_context(1, 1);
            let tracer = Tracer::from_sink(DiskSpanBridge::new(rec.clone()));
            tracer.record_all(&drive_events(0));
            tracer.record_all(&drive_events(1));
            rec.take_sorted()
        };
        assert_eq!(run(), run());
        let spans = run();
        let ids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.id).collect();
        assert_eq!(ids.len(), spans.len(), "ids unique across commands");
    }
}
