//! Bounded admission queue with typed overload rejection.
//!
//! The server's front end: arrivals are offered in trace order; when the
//! queue is at its configured depth bound the arrival is refused with a
//! typed [`AdmissionError`] rather than queued without limit, so overload
//! shows up as an explicit rejection count instead of unbounded latency.

use sim_disk::disk::Request;
use sim_disk::SimTime;
use std::error::Error;
use std::fmt;

/// A client request waiting in the server's admission queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Queued {
    /// Stable client-request identity: its index in the arrival trace.
    /// Ids are assigned in arrival order, so later arrivals always carry
    /// larger ids — schedulers use `(lbn, id)` as a total order.
    pub id: u64,
    /// When the request arrived at the server.
    pub arrival: SimTime,
    /// The block-level request.
    pub request: Request,
}

/// Why an arrival was refused admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionError {
    /// The queue was already at its configured depth bound.
    QueueFull {
        /// Queue depth at the instant of rejection (equals the bound).
        depth: usize,
        /// The configured bound.
        limit: usize,
    },
}

impl fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdmissionError::QueueFull { depth, limit } => {
                write!(f, "admission queue full ({depth} of {limit})")
            }
        }
    }
}

impl Error for AdmissionError {}

/// The bounded queue fronting the server loop.
///
/// Entries stay in admission (arrival) order; schedulers reorder at
/// dispatch time via [`entries_mut`](AdmissionQueue::entries_mut), not
/// here. The queue tracks its own admission/rejection counters and the
/// high-water depth.
#[derive(Debug)]
pub struct AdmissionQueue {
    limit: usize,
    entries: Vec<Queued>,
    admitted: u64,
    rejected: u64,
    max_depth: usize,
}

impl AdmissionQueue {
    /// Creates an empty queue bounded at `limit` entries.
    ///
    /// # Panics
    ///
    /// Panics if `limit` is zero — a server that can hold no request at
    /// all would reject every arrival.
    pub fn new(limit: usize) -> Self {
        assert!(limit > 0, "queue limit must be positive");
        AdmissionQueue {
            limit,
            entries: Vec::new(),
            admitted: 0,
            rejected: 0,
            max_depth: 0,
        }
    }

    /// Offers one arrival; admits it or returns the typed rejection.
    pub fn offer(&mut self, q: Queued) -> Result<(), AdmissionError> {
        if self.entries.len() >= self.limit {
            self.rejected += 1;
            return Err(AdmissionError::QueueFull {
                depth: self.entries.len(),
                limit: self.limit,
            });
        }
        self.entries.push(q);
        self.admitted += 1;
        self.max_depth = self.max_depth.max(self.entries.len());
        Ok(())
    }

    /// Current queue depth.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured depth bound.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// The queued entries, in admission order.
    pub fn entries(&self) -> &[Queued] {
        &self.entries
    }

    /// Mutable access for schedulers, which remove the entries they
    /// dispatch. Depth accounting reads the length afterwards, so
    /// schedulers only need to take entries out, never push.
    pub fn entries_mut(&mut self) -> &mut Vec<Queued> {
        &mut self.entries
    }

    /// Arrivals admitted so far.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Arrivals refused so far.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// High-water queue depth.
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(id: u64) -> Queued {
        Queued {
            id,
            arrival: SimTime::from_ns(id * 1000),
            request: Request::read(id * 8, 8),
        }
    }

    #[test]
    fn admits_until_full_then_rejects_typed() {
        let mut queue = AdmissionQueue::new(2);
        queue.offer(q(0)).unwrap();
        queue.offer(q(1)).unwrap();
        let err = queue.offer(q(2)).unwrap_err();
        assert_eq!(err, AdmissionError::QueueFull { depth: 2, limit: 2 });
        assert_eq!(err.to_string(), "admission queue full (2 of 2)");
        assert_eq!(queue.admitted(), 2);
        assert_eq!(queue.rejected(), 1);
        assert_eq!(queue.max_depth(), 2);
    }

    #[test]
    fn draining_reopens_admission() {
        let mut queue = AdmissionQueue::new(1);
        queue.offer(q(0)).unwrap();
        assert!(queue.offer(q(1)).is_err());
        queue.entries_mut().clear();
        queue.offer(q(2)).unwrap();
        assert_eq!(queue.entries()[0].id, 2);
        assert_eq!(queue.max_depth(), 1);
    }
}
