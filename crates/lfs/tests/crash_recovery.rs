//! End-to-end LFS roll-forward properties: a random append/checkpoint
//! stream, a power cut at a random instant, then recovery must anchor on
//! the newest durable checkpoint and accept exactly the fully-durable
//! batch prefix — bit-exact and reproducible from (seed, cut) alone.

use lfs::recovery::{recover, LogDisk, LOG_START};
use proptest::prelude::*;
use sim_disk::crash::{pattern_payload, replay, splitmix, CrashLog, SectorImage, SECTOR_USIZE};
use sim_disk::disk::Disk;
use sim_disk::{models, SimTime};

const CAPACITY: u64 = 4096;

/// One logged operation, with the index of the write command it issued
/// (appends and checkpoints each issue exactly one command, in order).
enum Op {
    Append {
        seq: u64,
        start_lbn: u64,
        data: Vec<u8>,
    },
    Checkpoint {
        generation: u64,
        head: u64,
        seq: u64,
    },
}

/// Runs a deterministic pseudo-random stream of appends (1–16 sectors)
/// and occasional checkpoints; returns the ops in issue order plus the
/// crash log.
fn build(seed: u64) -> (Vec<Op>, CrashLog) {
    let mut log = LogDisk::new(Disk::new(models::small_test_disk()), CAPACITY);
    let mut h = seed;
    let mut next = move || {
        h = splitmix(h);
        h
    };
    let mut ops = Vec::new();
    for i in 0..40 {
        if next() % 5 == 0 {
            log.checkpoint();
            ops.push(Op::Checkpoint {
                generation: log.generation(),
                head: log.head(),
                seq: log.seq(),
            });
        } else {
            let sectors = 1 + next() % 16;
            let start_lbn = log.head() + 1;
            let data = pattern_payload(seed ^ (i + 1), start_lbn, sectors);
            log.append(&data).expect("40 small batches fit in the log");
            ops.push(Op::Append {
                seq: log.seq(),
                start_lbn,
                data,
            });
        }
    }
    let l = log
        .disk_mut()
        .take_crash_log()
        .expect("LogDisk arms the log");
    (ops, l)
}

fn fully_durable(log: &CrashLog, record: usize, cut: SimTime) -> bool {
    log.records[record].durable.iter().all(|&d| d <= cut)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For ANY cut point: recovery anchors on the max-generation durable
    /// checkpoint (or the mkfs fallback), accepts exactly the leading run
    /// of fully-durable batches past that anchor, returns their bytes
    /// bit-exact, and the whole pipeline reproduces from (seed, cut).
    #[test]
    fn any_cut_recovers_the_durable_prefix(
        seed in 0u64..u64::MAX,
        frac in 0u64..=1000,
    ) {
        let (ops, log) = build(seed);
        let cut = SimTime::from_ns(log.horizon().as_ns() * frac / 1000);
        let img = replay(&SectorImage::new(), &log, cut).expect("payloads attached");
        let got = recover(&img, CAPACITY);

        // Oracle, computed from the crash log's durability instants alone
        // (ops and write commands correspond one-to-one, in issue order).
        // Single-sector checkpoints are atomic: durable or absent.
        let mut anchor = (0u64, LOG_START, 0u64);
        for (rec, op) in ops.iter().enumerate() {
            if let Op::Checkpoint { generation, head, seq } = op {
                if fully_durable(&log, rec, cut) && *generation > anchor.0 {
                    anchor = (*generation, *head, *seq);
                }
            }
        }
        prop_assert_eq!(got.generation, anchor.0);
        prop_assert_eq!(got.checkpoint_head, anchor.1);
        prop_assert_eq!(got.checkpoint_seq, anchor.2);

        // Expected batches: the consecutive fully-durable run starting at
        // the anchor's sequence number (FCFS ⇒ log order is media order,
        // so the first torn or absent batch ends recovery).
        let mut want: Vec<(u64, u64, &[u8])> = Vec::new();
        let mut next_seq = anchor.2 + 1;
        for (rec, op) in ops.iter().enumerate() {
            if let Op::Append { seq, start_lbn, data } = op {
                if *seq != next_seq {
                    continue;
                }
                if !fully_durable(&log, rec, cut) {
                    break;
                }
                want.push((*seq, *start_lbn, data));
                next_seq += 1;
            }
        }
        prop_assert_eq!(got.batches.len(), want.len());
        let mut head = anchor.1;
        for (b, (seq, start_lbn, data)) in got.batches.iter().zip(&want) {
            prop_assert_eq!(b.seq, *seq);
            prop_assert_eq!(b.start_lbn, *start_lbn);
            prop_assert_eq!(&b.data[..], *data);
            head = start_lbn + (data.len() / SECTOR_USIZE) as u64;
        }
        prop_assert_eq!(got.head, head, "appends must resume exactly past the recovered tail");
        prop_assert_eq!(got.seq, next_seq - 1);

        // Bit-reproducibility: an identical run cut at the same instant
        // recovers identically.
        let (_, log2) = build(seed);
        let img2 = replay(&SectorImage::new(), &log2, cut).expect("payloads attached");
        prop_assert_eq!(&img2, &img);
        prop_assert_eq!(recover(&img2, CAPACITY), got);
    }

    /// Cutting at or past the horizon loses nothing: every batch after
    /// the last checkpoint is recovered and the resume point equals the
    /// writer's final head and sequence number.
    #[test]
    fn horizon_cut_recovers_everything(seed in 0u64..u64::MAX) {
        let (ops, log) = build(seed);
        let img = replay(&SectorImage::new(), &log, log.horizon()).expect("payloads attached");
        let got = recover(&img, CAPACITY);

        let mut final_head = LOG_START;
        let mut final_seq = 0;
        let mut appended = 0u64;
        for op in &ops {
            match op {
                Op::Append { seq, start_lbn, data } => {
                    final_head = start_lbn + (data.len() / SECTOR_USIZE) as u64;
                    final_seq = *seq;
                    appended += 1;
                }
                Op::Checkpoint { .. } => {}
            }
        }
        prop_assert_eq!(got.head, final_head);
        prop_assert_eq!(got.seq, final_seq);
        // The anchor covers everything up to its seq; roll-forward gets
        // the rest.
        prop_assert_eq!(got.batches.len() as u64, appended - got.checkpoint_seq);
    }
}
