//! Log-structured file system segment economics (§5.5, Figure 10).
//!
//! LFS remaps every new version of data into large contiguous *segments*,
//! trading positioning cost for cleaning cost. The paper evaluates this
//! trade-off with the *overall write cost* metric of Matthews et al.:
//!
//! ```text
//! OWC = WriteCost × TransferInefficiency
//! WriteCost = (N_new + N_clean_read + N_clean_written) / N_data
//! TransferInefficiency = T_actual / T_ideal
//! ```
//!
//! `WriteCost` depends only on the workload and the cleaner
//! ([`cleaner::LfsSim`] — a segment writer plus greedy/cost-benefit cleaner
//! driven by a hot/cold update stream standing in for the Auspex trace).
//! `TransferInefficiency` depends only on the disk and is *measured* on the
//! simulated drive for track-aligned and unaligned segment writes
//! ([`transfer_inefficiency`]).
//!
//! Matching segments to track boundaries needs variable-sized segments;
//! [`segments::SegmentTable`] is the augmented segment-usage table of
//! §5.5.1, carrying each segment's start LBN and length.
//!
//! For crash-consistency experiments, [`recovery`] layers a byte-level
//! checkpointed log onto the simulated disk: batches append atomically
//! behind a pair of alternating checkpoint sectors, and after a power cut
//! [`recovery::recover`] rolls forward from the newest durable checkpoint,
//! discarding any torn tail. Accounting violations across the crate
//! surface as the typed [`LfsError`] rather than panics.

#![warn(missing_docs)]

pub mod cleaner;
pub mod error;
pub mod recovery;
pub mod segments;

pub use error::LfsError;

use sim_disk::disk::{Disk, DiskConfig, Request};
use sim_disk::SimTime;
use traxtent::stats;

/// Measures `TransferInefficiency` for random segment-sized writes within
/// the first zone: actual average write time over the ideal media transfer
/// time at peak (streaming) bandwidth.
///
/// `aligned` segments start at track boundaries (and are written one track
/// per request, as a traxtent LFS would); unaligned segments start anywhere
/// and are written with one request per segment.
pub fn transfer_inefficiency(
    config: &DiskConfig,
    segment_sectors: u64,
    aligned: bool,
    samples: usize,
    seed: u64,
) -> f64 {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    assert!(segment_sectors > 0 && samples > 0);
    let mut disk = Disk::new(config.clone());
    let zone = disk.geometry().zones()[0];
    let zone_end = zone.first_lbn + zone.lbn_count;
    let spt = u64::from(zone.spt);
    let track_starts: Vec<u64> = disk
        .geometry()
        .iter_tracks()
        .filter(|(_, t)| t.lbn_count() > 0 && t.first_lbn() >= zone.first_lbn)
        .map(|(_, t)| t.first_lbn())
        .filter(|&s| s + segment_sectors <= zone_end)
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut times = Vec::with_capacity(samples);
    let mut now = SimTime::ZERO;
    for _ in 0..samples {
        let start = if aligned {
            track_starts[rng.gen_range(0..track_starts.len())]
        } else {
            zone.first_lbn + rng.gen_range(0..zone.lbn_count - segment_sectors)
        };
        let t0 = now;
        if aligned {
            // A traxtent LFS writes a segment as track-sized requests,
            // queued back to back.
            let mut at = start;
            let mut remaining = segment_sectors;
            while remaining > 0 {
                let (_, track_end) = disk.geometry().track_bounds(at).expect("in range");
                let chunk = remaining.min(track_end - at);
                let c = disk.service(Request::write(at, chunk), t0);
                now = c.completion;
                at += chunk;
                remaining -= chunk;
            }
        } else {
            let c = disk.service(Request::write(start, segment_sectors), t0);
            now = c.completion;
        }
        times.push((now - t0).as_secs_f64());
    }
    let actual = stats::mean(&times);
    // Ideal: media transfer at streaming bandwidth, including the mandatory
    // head switch per track (the denominator the paper's Figure 1 uses for
    // its "maximum streaming efficiency" asymptote is pure media time; the
    // transfer-inefficiency metric uses peak bandwidth, i.e. media time
    // only).
    let ideal = segment_sectors as f64 / spt as f64 * disk.spindle().revolution().as_secs_f64();
    actual / ideal
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_disk::models;

    #[test]
    fn aligned_transfer_is_more_efficient_at_track_size() {
        let cfg = models::quantum_atlas_10k_ii();
        let track = 528;
        let a = transfer_inefficiency(&cfg, track, true, 300, 5);
        let u = transfer_inefficiency(&cfg, track, false, 300, 5);
        assert!(a < u, "aligned TI {a} should beat unaligned {u}");
        // Aligned track-sized write ≈ seek + settle + rev over rev ≈ 1.5.
        assert!((1.2..=1.8).contains(&a), "aligned TI {a}");
        assert!((1.8..=2.6).contains(&u), "unaligned TI {u}");
    }

    #[test]
    fn inefficiency_decreases_with_segment_size() {
        let cfg = models::quantum_atlas_10k_ii();
        let small = transfer_inefficiency(&cfg, 64, false, 200, 9);
        let large = transfer_inefficiency(&cfg, 4096, false, 200, 9);
        assert!(small > large, "{small} !> {large}");
        assert!(
            small > 5.0,
            "64-sector segments should be dominated by positioning"
        );
    }

    #[test]
    fn matches_matthews_model_for_unaligned() {
        // The paper verifies its empirical numbers against the
        // `Tpos·BW/S + 1` model for the unaligned case.
        let cfg = models::quantum_atlas_10k_ii();
        for sectors in [512u64, 1024, 2048] {
            let measured = transfer_inefficiency(&cfg, sectors, false, 300, 11);
            let model = traxtent::model::matthews_transfer_inefficiency(
                5.2e-3,
                40e6,
                sectors as f64 * 512.0,
            );
            let ratio = measured / model;
            assert!(
                (0.75..=1.35).contains(&ratio),
                "sectors {sectors}: {measured} vs {model}"
            );
        }
    }
}
