//! The LFS segment writer and cleaner, producing the `WriteCost` factor of
//! the overall-write-cost metric.
//!
//! The workload is a hot/cold update stream standing in for the Auspex
//! trace of Matthews et al.: by default 90 % of updates hit 10 % of the
//! data. The cleaner is greedy (lowest-utilization victim first) and runs
//! whenever the pool of empty segments drops below a small reserve —
//! cleaned live data is appended to the log like any other write, so
//! cleaning both reads and rewrites live sectors, exactly the `N_clean_read
//! + N_clean_written` terms of the metric.

use crate::error::LfsError;
use crate::segments::SegmentTable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use traxtent::TrackBoundaries;

/// Workload and policy parameters.
#[derive(Debug, Clone, Copy)]
pub struct LfsConfig {
    /// Live data as a fraction of capacity (disk utilization).
    pub utilization: f64,
    /// Fraction of updates that hit the hot set.
    pub hot_update_frac: f64,
    /// Fraction of the data that is hot.
    pub hot_data_frac: f64,
    /// Empty segments to keep in reserve (cleaning trigger).
    pub reserve_segments: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LfsConfig {
    fn default() -> Self {
        LfsConfig {
            utilization: 0.75,
            hot_update_frac: 0.9,
            hot_data_frac: 0.1,
            reserve_segments: 4,
            seed: 0x1f5,
        }
    }
}

/// Sector-count tallies of everything written or read on behalf of writes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WriteTally {
    /// New application data appended to the log.
    pub new_written: u64,
    /// Live sectors read by the cleaner.
    pub clean_read: u64,
    /// Live sectors rewritten by the cleaner.
    pub clean_written: u64,
}

impl WriteTally {
    /// The Matthews et al. write-cost ratio.
    pub fn write_cost(&self) -> f64 {
        if self.new_written == 0 {
            return 1.0;
        }
        (self.new_written + self.clean_read + self.clean_written) as f64 / self.new_written as f64
    }
}

/// The LFS simulator.
#[derive(Debug)]
pub struct LfsSim {
    table: SegmentTable,
    config: LfsConfig,
    /// Logical sector → segment currently holding it (or None before the
    /// initial fill).
    location: Vec<Option<usize>>,
    /// Segments ordered by scaled utilization for greedy victim selection.
    by_util: BTreeSet<(u64, usize)>,
    /// The segment currently being appended to and its fill level.
    open: usize,
    open_fill: u64,
    empty: Vec<usize>,
    tally: WriteTally,
    cleaner_passes: u64,
}

impl LfsSim {
    /// Creates a simulator with fixed-size segments over `capacity` sectors.
    ///
    /// # Panics
    ///
    /// Panics if the configuration leaves fewer than `reserve_segments + 2`
    /// segments or utilization is not within `(0, 0.95]`.
    pub fn fixed(capacity: u64, segment_sectors: u64, config: LfsConfig) -> Self {
        Self::with_table(SegmentTable::fixed(capacity, segment_sectors), config)
    }

    /// Creates a simulator with track-matched variable segments.
    pub fn track_matched(boundaries: &TrackBoundaries, config: LfsConfig) -> Self {
        Self::with_table(SegmentTable::track_matched(boundaries), config)
    }

    /// Creates a simulator over an explicit segment table.
    pub fn with_table(table: SegmentTable, config: LfsConfig) -> Self {
        assert!(config.utilization > 0.0 && config.utilization <= 0.95);
        assert!(
            table.len() > config.reserve_segments + 2,
            "too few segments for the reserve"
        );
        let capacity: u64 = (0..table.len()).map(|i| table.get(i).len).sum();
        let live_target = (capacity as f64 * config.utilization) as u64;
        let max_seg = (0..table.len())
            .map(|i| table.get(i).len)
            .max()
            .expect("non-empty");
        assert!(
            live_target + (config.reserve_segments as u64 + 2) * max_seg <= capacity,
            "utilization too high to maintain the cleaning reserve \
             (shrink segments or grow capacity)"
        );
        let mut sim = LfsSim {
            location: vec![None; live_target as usize],
            by_util: BTreeSet::new(),
            open: 0,
            open_fill: 0,
            empty: (1..table.len()).rev().collect(),
            table,
            config,
            tally: WriteTally::default(),
            cleaner_passes: 0,
        };
        // Initial fill: write every logical sector once (not tallied — the
        // metric covers steady-state behaviour). The fill fits by the
        // capacity assertion above, so failure here is a construction bug.
        for logical in 0..live_target {
            sim.append(logical as usize, false)
                .expect("initial fill fits within capacity");
        }
        sim.tally = WriteTally::default();
        sim
    }

    /// Total live sectors.
    pub fn live_sectors(&self) -> u64 {
        self.table.total_live()
    }

    /// The tallies so far.
    pub fn tally(&self) -> WriteTally {
        self.tally
    }

    /// How many times the cleaner selected and emptied a victim segment.
    pub fn cleaner_passes(&self) -> u64 {
        self.cleaner_passes
    }

    /// Segment-utilization histogram: ten equal-width buckets over
    /// `[0, 1]`, with fully-utilized segments counted in the last bucket.
    pub fn segment_utilization_histogram(&self) -> [u64; 10] {
        let mut buckets = [0u64; 10];
        for i in 0..self.table.len() {
            let u = self.table.utilization(i);
            let b = ((u * 10.0) as usize).min(9);
            buckets[b] += 1;
        }
        buckets
    }

    /// Publishes the simulator's state under `lfs.*`: the write tally, the
    /// cleaner pass count, and the segment-utilization histogram
    /// (`lfs.seg_util.bucket0` = segments below 10 % utilized, …,
    /// `bucket9` = 90 % and above). The write-cost ratio is exported as a
    /// parts-per-million high-water mark so concurrent runs commute.
    pub fn export_metrics(&self, reg: &traxtent::obs::Registry) {
        reg.add("lfs.new_written", self.tally.new_written);
        reg.add("lfs.clean_read", self.tally.clean_read);
        reg.add("lfs.clean_written", self.tally.clean_written);
        reg.add("lfs.cleaner.passes", self.cleaner_passes);
        reg.add("lfs.segments", self.table.len() as u64);
        reg.set_max("lfs.write_cost_ppm", (self.tally.write_cost() * 1e6) as u64);
        for (b, count) in self.segment_utilization_histogram().iter().enumerate() {
            reg.add(&format!("lfs.seg_util.bucket{b}"), *count);
        }
    }

    /// Debug helper: run `updates` overwrites with an explicit seed offset
    /// (used by consistency-check harnesses).
    ///
    /// # Errors
    ///
    /// Propagates any [`LfsError`] from the update stream.
    #[doc(hidden)]
    pub fn run_updates_dbg(
        &mut self,
        updates: u64,
        seed_offset: u64,
    ) -> Result<WriteTally, LfsError> {
        let saved = self.config.seed;
        self.config.seed = saved.wrapping_add(seed_offset);
        let t = self.run_updates(updates);
        self.config.seed = saved;
        t
    }

    /// Debug helper: verify the location map and the segment liveness agree.
    #[doc(hidden)]
    pub fn check_consistency(&self) -> Result<(), String> {
        let mut counts = vec![0u64; self.table.len()];
        for loc in self.location.iter().flatten() {
            counts[*loc] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            if c != self.table.get(i).live {
                return Err(format!(
                    "segment {i}: {} located vs {} live",
                    c,
                    self.table.get(i).live
                ));
            }
        }
        Ok(())
    }

    /// Runs `updates` logical-sector overwrites with the configured
    /// hot/cold skew and returns the final tally.
    ///
    /// # Errors
    ///
    /// Returns the first [`LfsError`] hit by the writer or the cleaner
    /// (segment accounting violation, missing victim, or an exhausted
    /// cleaning reserve). The tally reflects work completed before the
    /// failure.
    pub fn run_updates(&mut self, updates: u64) -> Result<WriteTally, LfsError> {
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let n = self.location.len();
        let hot_n = ((n as f64) * self.config.hot_data_frac).max(1.0) as usize;
        for _ in 0..updates {
            let logical = if rng.gen_bool(self.config.hot_update_frac) {
                rng.gen_range(0..hot_n)
            } else {
                rng.gen_range(0..n)
            };
            self.overwrite(logical)?;
        }
        Ok(self.tally)
    }

    /// Overwrites one logical sector: kill the old copy, append the new.
    fn overwrite(&mut self, logical: usize) -> Result<(), LfsError> {
        if let Some(seg) = self.location[logical] {
            self.unindex(seg);
            self.table.remove_live(seg, 1)?;
            self.index(seg);
            // Clear the stale pointer *before* appending: the append may
            // trigger cleaning, and the cleaner must not relocate the dead
            // copy.
            self.location[logical] = None;
        }
        self.append(logical, true)
    }

    /// Appends a (re)written logical sector to the open segment, rolling to
    /// a fresh segment — and cleaning — as needed. `tallied` distinguishes
    /// application writes from the untallied initial fill.
    fn append(&mut self, logical: usize, tallied: bool) -> Result<(), LfsError> {
        if self.open_fill >= self.table.get(self.open).len {
            self.roll_segment()?;
        }
        self.open_fill += 1;
        self.unindex(self.open);
        self.table.add_live(self.open, 1)?;
        self.index(self.open);
        self.location[logical] = Some(self.open);
        if tallied {
            self.tally.new_written += 1;
        }
        Ok(())
    }

    /// Closes the open segment and opens an empty one, cleaning if the
    /// reserve is low.
    fn roll_segment(&mut self) -> Result<(), LfsError> {
        while self.empty.len() < self.config.reserve_segments {
            self.clean_one()?;
        }
        self.open = self.empty.pop().ok_or(LfsError::ReserveExhausted)?;
        self.open_fill = self.table.get(self.open).live; // 0 for empty segments
        debug_assert_eq!(self.open_fill, 0);
        Ok(())
    }

    /// Cleans the lowest-utilization victim: reads its live sectors and
    /// appends them to the log.
    fn clean_one(&mut self) -> Result<(), LfsError> {
        self.cleaner_passes += 1;
        let victim = self
            .by_util
            .iter()
            .find(|&&(_, seg)| seg != self.open && self.table.get(seg).live > 0)
            .map(|&(_, seg)| seg)
            .ok_or(LfsError::NoCleaningVictim)?;
        let live = self.table.get(victim).live;
        self.tally.clean_read += live;
        // Relocate each live logical sector: find them via the location map
        // is O(n); instead we only need the *count* — the identity of which
        // logical sectors move does not affect the metric, but their
        // location must follow them. Move the cheapest-to-find ones: scan
        // once and remap.
        let mut moved = 0;
        for logical in 0..self.location.len() {
            if moved == live {
                break;
            }
            if self.location[logical] == Some(victim) {
                self.unindex(victim);
                self.table.remove_live(victim, 1)?;
                self.index(victim);
                self.append_cleaned(logical)?;
                moved += 1;
            }
        }
        debug_assert_eq!(moved, live);
        self.unindex(victim);
        self.table.reset(victim);
        self.index(victim);
        self.empty.push(victim);
        Ok(())
    }

    /// Appends a cleaned sector (counts as cleaner write).
    fn append_cleaned(&mut self, logical: usize) -> Result<(), LfsError> {
        if self.open_fill >= self.table.get(self.open).len {
            // Cleaning must not recurse into cleaning: the reserve exists so
            // a fresh segment is always available here.
            self.open = self.empty.pop().ok_or(LfsError::ReserveExhausted)?;
            self.open_fill = 0;
        }
        self.open_fill += 1;
        self.unindex(self.open);
        self.table.add_live(self.open, 1)?;
        self.index(self.open);
        self.location[logical] = Some(self.open);
        self.tally.clean_written += 1;
        Ok(())
    }

    fn util_key(&self, seg: usize) -> (u64, usize) {
        let s = self.table.get(seg);
        ((s.live * 1_000_000) / s.len.max(1), seg)
    }

    fn index(&mut self, seg: usize) {
        let k = self.util_key(seg);
        self.by_util.insert(k);
    }

    fn unindex(&mut self, seg: usize) {
        let k = self.util_key(seg);
        self.by_util.remove(&k);
    }
}

/// Convenience: steady-state write cost for fixed segments of
/// `segment_sectors` over `capacity`, after `updates` skewed overwrites.
///
/// # Panics
///
/// Panics if the update stream hits an accounting error — impossible for
/// a well-formed configuration, so the figure binaries treat it as fatal.
pub fn write_cost_fixed(
    capacity: u64,
    segment_sectors: u64,
    updates: u64,
    config: LfsConfig,
) -> f64 {
    let mut sim = LfsSim::fixed(capacity, segment_sectors, config);
    sim.run_updates(updates)
        .expect("well-formed config never breaks accounting")
        .write_cost()
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAP: u64 = 64 * 1024; // 32 MB in sectors

    #[test]
    fn liveness_is_conserved() {
        let mut sim = LfsSim::fixed(CAP, 512, LfsConfig::default());
        let before = sim.live_sectors();
        sim.run_updates(20_000).unwrap();
        assert_eq!(
            sim.live_sectors(),
            before,
            "cleaner must not lose live data"
        );
    }

    #[test]
    fn write_cost_at_least_one() {
        let mut sim = LfsSim::fixed(CAP, 512, LfsConfig::default());
        let t = sim.run_updates(20_000).unwrap();
        assert!(t.write_cost() >= 1.0);
        assert_eq!(
            t.clean_read, t.clean_written,
            "cleaner rewrites what it reads"
        );
    }

    #[test]
    fn larger_segments_cost_more_to_clean() {
        // Hot/cold mixing penalizes big segments (the Auspex trend).
        let small = write_cost_fixed(CAP, 128, 60_000, LfsConfig::default());
        let large = write_cost_fixed(CAP, 2048, 60_000, LfsConfig::default());
        assert!(
            large > small,
            "write cost should grow with segment size: {small} vs {large}"
        );
    }

    #[test]
    fn track_matched_segments_work() {
        let tb = traxtent::TrackBoundaries::uniform(128, 512);
        let mut sim = LfsSim::track_matched(&tb, LfsConfig::default());
        let t = sim.run_updates(20_000).unwrap();
        assert!(t.write_cost() >= 1.0);
        assert_eq!(sim.live_sectors(), (tb.capacity() as f64 * 0.75) as u64);
    }

    #[test]
    fn low_utilization_cleans_almost_free() {
        let cheap = write_cost_fixed(
            CAP,
            1024,
            40_000,
            LfsConfig {
                utilization: 0.3,
                ..LfsConfig::default()
            },
        );
        let pricey = write_cost_fixed(
            CAP,
            1024,
            40_000,
            LfsConfig {
                utilization: 0.9,
                ..LfsConfig::default()
            },
        );
        assert!(cheap < pricey, "{cheap} !< {pricey}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = write_cost_fixed(CAP, 512, 20_000, LfsConfig::default());
        let b = write_cost_fixed(CAP, 512, 20_000, LfsConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "too few segments")]
    fn tiny_tables_rejected() {
        let _ = LfsSim::fixed(1024, 512, LfsConfig::default());
    }

    #[test]
    fn metrics_account_for_the_run() {
        let mut sim = LfsSim::fixed(CAP, 512, LfsConfig::default());
        let t = sim.run_updates(20_000).unwrap();
        assert!(sim.cleaner_passes() > 0, "the reserve forces cleaning");
        let hist = sim.segment_utilization_histogram();
        assert_eq!(
            hist.iter().sum::<u64>(),
            (CAP / 512),
            "every segment lands in exactly one bucket"
        );
        let reg = traxtent::obs::Registry::new();
        sim.export_metrics(&reg);
        let snap = reg.snapshot();
        assert_eq!(snap.get("lfs.new_written"), Some(t.new_written));
        assert_eq!(snap.get("lfs.clean_read"), Some(t.clean_read));
        assert_eq!(snap.get("lfs.cleaner.passes"), Some(sim.cleaner_passes()));
        assert_eq!(snap.get("lfs.seg_util.bucket0"), Some(hist[0]));
        assert_eq!(
            snap.get("lfs.write_cost_ppm"),
            Some((t.write_cost() * 1e6) as u64)
        );
    }
}
