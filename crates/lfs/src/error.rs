//! Typed errors for the LFS segment and log paths.
//!
//! Accounting violations in the cleaner and segment table used to abort
//! with `panic!`/`expect`; they are now surfaced as [`LfsError`] so
//! harnesses (fault-injected runs in particular) can observe which
//! invariant broke instead of unwinding.

use std::error::Error;
use std::fmt;

/// Everything that can go wrong on the LFS segment-accounting and log
/// I/O paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LfsError {
    /// Adding live sectors would exceed the segment's length.
    SegmentOverfilled {
        /// The segment.
        segment: usize,
        /// Live sectors currently accounted.
        live: u64,
        /// The segment's capacity.
        len: u64,
        /// Sectors the caller tried to add.
        add: u64,
    },
    /// Removing live sectors would drive the segment's count negative.
    SegmentUnderflowed {
        /// The segment.
        segment: usize,
        /// Live sectors currently accounted.
        live: u64,
        /// Sectors the caller tried to remove.
        remove: u64,
    },
    /// The cleaner needed a victim but every candidate segment is empty
    /// or open.
    NoCleaningVictim,
    /// The cleaning reserve ran dry mid-clean: no empty segment was
    /// available to receive relocated live data.
    ReserveExhausted,
    /// An appended log batch does not fit between the log head and the
    /// end of the device.
    LogFull {
        /// Sectors the batch needs (summary + data).
        needed: u64,
        /// Sectors remaining past the head.
        remaining: u64,
    },
}

impl fmt::Display for LfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LfsError::SegmentOverfilled {
                segment,
                live,
                len,
                add,
            } => write!(
                f,
                "segment {segment} over-filled: {live} live + {add} > {len} sectors"
            ),
            LfsError::SegmentUnderflowed {
                segment,
                live,
                remove,
            } => write!(
                f,
                "segment {segment} under-flowed: {remove} removed with {live} live"
            ),
            LfsError::NoCleaningVictim => write!(f, "no non-empty segment to clean"),
            LfsError::ReserveExhausted => write!(f, "cleaning reserve exhausted mid-clean"),
            LfsError::LogFull { needed, remaining } => {
                write!(
                    f,
                    "log full: batch needs {needed} sectors, {remaining} remain"
                )
            }
        }
    }
}

impl Error for LfsError {}
