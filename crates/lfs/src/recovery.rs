//! Roll-forward crash recovery for the LFS log (the BSD-LFS recovery
//! discipline, scaled to the simulator's crash model).
//!
//! [`LogDisk`] drives a crash-logged [`sim_disk::disk::Disk`] as an
//! append-only log with a byte-level on-media format:
//!
//! * LBNs 0 and 1 hold two alternating single-sector **checkpoints**
//!   (generation `g` lands on LBN `g % 2`, so a torn checkpoint never
//!   destroys its predecessor). Single-sector writes are atomic under the
//!   crash model — a sector is either durable or absent, never half-new.
//! * The log proper starts at [`LOG_START`]. Each appended **batch** is
//!   one summary sector followed by its data sectors, issued as a single
//!   multi-sector write command. The firmware may tear that command out
//!   of LBN order, so the summary can hit media while the data does not
//!   (or vice versa) — recovery trusts nothing without checksums.
//!
//! After a power cut, [`recover`] reads the resolved [`SectorImage`],
//! picks the newest durable checkpoint (falling back to the mkfs state:
//! generation 0, head at [`LOG_START`]), and rolls forward through
//! batches while each summary self-checksums, continues the sequence
//! numbering, and matches its data checksum. The first batch failing any
//! of those tests is a torn tail and everything from it on is discarded —
//! which is safe precisely because the writer is FCFS: log order is
//! media order, so nothing durable can hide behind a torn batch.

use crate::error::LfsError;
use sim_disk::crash::{checksum, SectorImage, SECTOR_USIZE};
use sim_disk::disk::{Disk, Request};
use sim_disk::SimTime;

/// The two alternating checkpoint sectors.
pub const CHECKPOINT_LBNS: [u64; 2] = [0, 1];
/// First LBN of the append-only log region.
pub const LOG_START: u64 = 2;

const MAGIC_CKPT: u64 = 0x5452_4158_434b_5054; // "TRAXCKPT"
const MAGIC_BATCH: u64 = 0x5452_4158_4241_5443; // "TRAXBATC"

/// Serializes `words` into the head of a sector and appends a
/// self-checksum word over them.
fn seal_sector(words: &[u64]) -> [u8; SECTOR_USIZE] {
    let mut sector = [0u8; SECTOR_USIZE];
    for (i, w) in words.iter().enumerate() {
        sector[i * 8..(i + 1) * 8].copy_from_slice(&w.to_le_bytes());
    }
    let n = words.len();
    let sum = checksum(&sector[..n * 8]);
    sector[n * 8..(n + 1) * 8].copy_from_slice(&sum.to_le_bytes());
    sector
}

/// Reads `n` sealed words back out of `sector`, or `None` if the
/// self-checksum does not hold.
fn unseal_sector(sector: &[u8; SECTOR_USIZE], n: usize) -> Option<Vec<u64>> {
    let stored = u64::from_le_bytes(sector[n * 8..(n + 1) * 8].try_into().unwrap());
    if checksum(&sector[..n * 8]) != stored {
        return None;
    }
    Some(
        (0..n)
            .map(|i| u64::from_le_bytes(sector[i * 8..(i + 1) * 8].try_into().unwrap()))
            .collect(),
    )
}

/// An append-only checkpointed log over a crash-logged disk.
#[derive(Debug)]
pub struct LogDisk {
    disk: Disk,
    clock: SimTime,
    capacity: u64,
    head: u64,
    seq: u64,
    generation: u64,
}

impl LogDisk {
    /// Wraps `disk` as a log over its first `capacity` LBNs, arming the
    /// crash log so every write's bytes and durability instants are
    /// recorded. The media starts blank (generation 0): until the first
    /// [`checkpoint`](Self::checkpoint) lands, recovery falls back to an
    /// empty log at [`LOG_START`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity` does not leave room for the checkpoint pair
    /// plus at least one minimal batch.
    pub fn new(mut disk: Disk, capacity: u64) -> Self {
        assert!(capacity > LOG_START + 1, "log capacity too small");
        disk.enable_crash_log();
        LogDisk {
            disk,
            clock: SimTime::ZERO,
            capacity,
            head: LOG_START,
            seq: 0,
            generation: 0,
        }
    }

    /// The simulated clock after the last write completed.
    pub fn clock(&self) -> SimTime {
        self.clock
    }

    /// Next LBN the log will append at.
    pub fn head(&self) -> u64 {
        self.head
    }

    /// Sequence number of the last appended batch.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Generation of the last checkpoint written.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The underlying disk (e.g. to take the crash log after a run).
    pub fn disk_mut(&mut self) -> &mut Disk {
        &mut self.disk
    }

    /// Appends one batch — a sealed summary sector plus `data` — as a
    /// single write command and returns its completion time. `data` must
    /// be a non-empty whole number of sectors.
    ///
    /// # Errors
    ///
    /// Returns [`LfsError::LogFull`] (leaving the log untouched) when the
    /// batch does not fit between the head and the end of the device; the
    /// log never wraps.
    ///
    /// # Panics
    ///
    /// Panics if `data` is empty or not sector-aligned.
    pub fn append(&mut self, data: &[u8]) -> Result<SimTime, LfsError> {
        assert!(
            !data.is_empty() && data.len().is_multiple_of(SECTOR_USIZE),
            "batch data must be a non-empty whole number of sectors"
        );
        let len = (data.len() / SECTOR_USIZE) as u64;
        let needed = 1 + len;
        let remaining = self.capacity - self.head;
        if needed > remaining {
            return Err(LfsError::LogFull { needed, remaining });
        }
        let seq = self.seq + 1;
        let summary = seal_sector(&[MAGIC_BATCH, seq, len, checksum(data)]);
        let mut payload = Vec::with_capacity((needed as usize) * SECTOR_USIZE);
        payload.extend_from_slice(&summary);
        payload.extend_from_slice(data);
        let c = self
            .disk
            .service(Request::write(self.head, needed), self.clock);
        self.disk.note_write_payload(&payload);
        self.clock = c.completion;
        self.head += needed;
        self.seq = seq;
        Ok(c.completion)
    }

    /// Writes the next checkpoint (single sector, alternating LBN) and
    /// returns its completion time. A durable checkpoint promises that
    /// every batch up to the current head survives recovery without a
    /// roll-forward scan reaching past it from an older generation.
    pub fn checkpoint(&mut self) -> SimTime {
        self.generation += 1;
        let lbn = CHECKPOINT_LBNS[(self.generation % 2) as usize];
        let sector = seal_sector(&[MAGIC_CKPT, self.generation, self.head, self.seq]);
        let c = self.disk.service(Request::write(lbn, 1), self.clock);
        self.disk.note_write_payload(&sector);
        self.clock = c.completion;
        c.completion
    }
}

/// One batch accepted by roll-forward.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredBatch {
    /// The batch's sequence number.
    pub seq: u64,
    /// LBN of the batch's first data sector (the summary precedes it).
    pub start_lbn: u64,
    /// The batch's data bytes.
    pub data: Vec<u8>,
}

/// What recovery reconstructed from a post-cut image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredLog {
    /// Generation of the checkpoint recovery anchored on (0 = mkfs
    /// fallback, no durable checkpoint found).
    pub generation: u64,
    /// The anchoring checkpoint's log head.
    pub checkpoint_head: u64,
    /// The anchoring checkpoint's sequence number.
    pub checkpoint_seq: u64,
    /// Batches accepted by roll-forward, in log order.
    pub batches: Vec<RecoveredBatch>,
    /// Log head after roll-forward (where appends would resume).
    pub head: u64,
    /// Sequence number after roll-forward.
    pub seq: u64,
}

fn decode_checkpoint(image: &SectorImage, lbn: u64, capacity: u64) -> Option<(u64, u64, u64)> {
    let words = unseal_sector(&image.read(lbn), 4)?;
    let (magic, generation, head, seq) = (words[0], words[1], words[2], words[3]);
    if magic != MAGIC_CKPT || generation == 0 {
        return None;
    }
    // The stored head must point inside the log region; a corrupt head
    // would otherwise send roll-forward out of bounds.
    if head < LOG_START || head > capacity {
        return None;
    }
    Some((generation, head, seq))
}

/// Recovers the log from a power-cut image: anchors on the newest durable
/// checkpoint (or the mkfs fallback) and rolls forward, discarding the
/// torn tail. Never fails — an unreadable log is an empty log.
pub fn recover(image: &SectorImage, capacity: u64) -> RecoveredLog {
    let anchor = CHECKPOINT_LBNS
        .iter()
        .filter_map(|&lbn| decode_checkpoint(image, lbn, capacity))
        .max_by_key(|&(generation, _, _)| generation);
    let (generation, checkpoint_head, checkpoint_seq) = anchor.unwrap_or((0, LOG_START, 0));

    let mut head = checkpoint_head;
    let mut seq = checkpoint_seq;
    let mut batches = Vec::new();
    while let Some(words) = unseal_sector(&image.read(head), 4) {
        let (magic, bseq, len, sum) = (words[0], words[1], words[2], words[3]);
        if magic != MAGIC_BATCH || bseq != seq + 1 || len == 0 || head + 1 + len > capacity {
            break;
        }
        let mut data = Vec::with_capacity((len as usize) * SECTOR_USIZE);
        for lbn in head + 1..head + 1 + len {
            data.extend_from_slice(&image.read(lbn));
        }
        if checksum(&data) != sum {
            break;
        }
        batches.push(RecoveredBatch {
            seq: bseq,
            start_lbn: head + 1,
            data,
        });
        head += 1 + len;
        seq = bseq;
    }
    RecoveredLog {
        generation,
        checkpoint_head,
        checkpoint_seq,
        batches,
        head,
        seq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_disk::crash::{pattern_payload, replay};
    use sim_disk::models;

    fn log_disk() -> LogDisk {
        LogDisk::new(Disk::new(models::small_test_disk()), 4096)
    }

    fn cut_image(log: &mut LogDisk, cut: Option<SimTime>) -> SectorImage {
        let l = log.disk_mut().take_crash_log().expect("log armed");
        let cut = cut.unwrap_or_else(|| l.horizon());
        replay(&SectorImage::new(), &l, cut).expect("payloads attached")
    }

    #[test]
    fn clean_shutdown_round_trips() {
        let mut log = log_disk();
        let a = pattern_payload(1, LOG_START + 1, 3);
        let b = pattern_payload(2, 0, 5);
        log.append(&a).unwrap();
        log.append(&b).unwrap();
        log.checkpoint();
        let c = pattern_payload(3, 7, 2);
        log.append(&c).unwrap();
        let (head, seq) = (log.head(), log.seq());

        let img = cut_image(&mut log, None);
        let r = recover(&img, 4096);
        assert_eq!(r.generation, 1);
        assert_eq!(r.checkpoint_seq, 2);
        assert_eq!(r.head, head);
        assert_eq!(r.seq, seq);
        // Roll-forward resumes from the checkpoint, so only batch 3 is
        // re-scanned; the checkpoint already covers 1 and 2.
        assert_eq!(r.batches.len(), 1);
        assert_eq!(r.batches[0].seq, 3);
        assert_eq!(r.batches[0].data, c);
    }

    #[test]
    fn no_checkpoint_falls_back_to_mkfs_and_scans_from_log_start() {
        let mut log = log_disk();
        let a = pattern_payload(9, 0, 2);
        log.append(&a).unwrap();
        let img = cut_image(&mut log, None);
        let r = recover(&img, 4096);
        assert_eq!(r.generation, 0);
        assert_eq!(r.checkpoint_head, LOG_START);
        assert_eq!(r.batches.len(), 1);
        assert_eq!(r.batches[0].data, a);
    }

    #[test]
    fn cut_before_a_batch_is_durable_discards_the_tail() {
        let mut log = log_disk();
        log.append(&pattern_payload(4, 0, 2)).unwrap();
        let before_tail = log.clock();
        log.append(&pattern_payload(5, 0, 6)).unwrap();
        // Cut strictly before the second command starts: only batch 1 can
        // have durable sectors.
        let img = cut_image(&mut log, Some(before_tail));
        let r = recover(&img, 4096);
        assert_eq!(r.batches.len(), 1);
        assert_eq!(r.batches[0].seq, 1);
        assert_eq!(r.head, LOG_START + 3);
    }

    #[test]
    fn corrupt_data_checksum_stops_roll_forward() {
        let mut log = log_disk();
        let a = pattern_payload(6, 0, 2);
        let b = pattern_payload(7, 0, 2);
        log.append(&a).unwrap();
        log.append(&b).unwrap();
        let mut img = cut_image(&mut log, None);
        // Flip a byte in batch 2's data; batch 2 and everything after it
        // must be discarded.
        let lbn = LOG_START + 3 + 1;
        let mut s = img.read(lbn);
        s[17] ^= 0xff;
        img.write(lbn, &s);
        let r = recover(&img, 4096);
        assert_eq!(r.batches.len(), 1);
        assert_eq!(r.batches[0].data, a);
        assert_eq!(r.head, LOG_START + 3);
    }

    #[test]
    fn newer_checkpoint_wins_and_torn_checkpoint_falls_back() {
        let mut log = log_disk();
        log.append(&pattern_payload(8, 0, 2)).unwrap();
        log.checkpoint(); // gen 1 → LBN 1
        let gen1_done = log.clock();
        log.append(&pattern_payload(9, 0, 2)).unwrap();
        log.checkpoint(); // gen 2 → LBN 0

        let full = cut_image_clone(&mut log);
        let r = recover(&full.0, 4096);
        assert_eq!(r.generation, 2);
        assert_eq!(r.batches.len(), 0, "gen-2 checkpoint covers everything");

        // Cut before the gen-2 checkpoint was durable: gen 1 anchors and
        // roll-forward recovers batch 2.
        let mid = replay(&SectorImage::new(), &full.1, gen1_done).expect("payloads");
        let r = recover(&mid, 4096);
        assert_eq!(r.generation, 1);
        assert_eq!(r.batches.len(), 0, "batch 2 not yet durable at gen1_done");

        let r = recover(&full.0, 4096);
        assert_eq!(r.seq, 2);
    }

    fn cut_image_clone(log: &mut LogDisk) -> (SectorImage, sim_disk::crash::CrashLog) {
        let l = log.disk_mut().take_crash_log().expect("log armed");
        let img = replay(&SectorImage::new(), &l, l.horizon()).expect("payloads");
        (img, l)
    }

    #[test]
    fn log_full_is_a_typed_error_and_leaves_the_log_untouched() {
        let mut log = LogDisk::new(Disk::new(models::small_test_disk()), LOG_START + 4);
        let (head, seq) = (log.head(), log.seq());
        let err = log.append(&pattern_payload(1, 0, 4)).unwrap_err();
        assert_eq!(
            err,
            LfsError::LogFull {
                needed: 5,
                remaining: 4
            }
        );
        assert_eq!((log.head(), log.seq()), (head, seq));
        // A smaller batch still fits afterwards.
        log.append(&pattern_payload(1, 0, 3)).unwrap();
    }
}
