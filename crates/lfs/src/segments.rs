//! The segment usage table with variable-sized segments (§5.5.1).
//!
//! Sprite-LFS kept per-segment usage in an in-memory kernel structure;
//! BSD-LFS stores it in the IFILE. Supporting track-matched segments only
//! requires augmenting each entry with a starting LBN and a length, set
//! from the track-boundary table at initialization.

use crate::error::LfsError;
use traxtent::{Extent, TrackBoundaries};

/// One segment's bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentInfo {
    /// Starting LBN.
    pub start: u64,
    /// Length in sectors.
    pub len: u64,
    /// Live sectors currently in the segment.
    pub live: u64,
}

/// The segment usage table: every segment's location, size, and liveness.
#[derive(Debug, Clone)]
pub struct SegmentTable {
    segments: Vec<SegmentInfo>,
}

impl SegmentTable {
    /// Fixed-size segments of `segment_sectors`, packed from LBN 0 over
    /// `capacity` sectors (the conventional LFS layout; the tail remainder
    /// is unused).
    ///
    /// # Panics
    ///
    /// Panics if `segment_sectors` is zero or exceeds `capacity`.
    pub fn fixed(capacity: u64, segment_sectors: u64) -> Self {
        assert!(segment_sectors > 0 && segment_sectors <= capacity);
        let n = capacity / segment_sectors;
        SegmentTable {
            segments: (0..n)
                .map(|i| SegmentInfo {
                    start: i * segment_sectors,
                    len: segment_sectors,
                    live: 0,
                })
                .collect(),
        }
    }

    /// Track-matched variable segments: one segment per track, sized from
    /// the boundary table (the traxtent LFS of §5.5.1).
    pub fn track_matched(boundaries: &TrackBoundaries) -> Self {
        SegmentTable {
            segments: boundaries
                .iter()
                .map(|e: Extent| SegmentInfo {
                    start: e.start,
                    len: e.len,
                    live: 0,
                })
                .collect(),
        }
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// True if the table has no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// A segment's info.
    pub fn get(&self, i: usize) -> SegmentInfo {
        self.segments[i]
    }

    /// Adds `n` live sectors to segment `i`.
    ///
    /// # Errors
    ///
    /// Returns [`LfsError::SegmentOverfilled`] if liveness would exceed
    /// the segment length (the accounting is left untouched).
    pub fn add_live(&mut self, i: usize, n: u64) -> Result<(), LfsError> {
        let s = &mut self.segments[i];
        if s.live + n > s.len {
            return Err(LfsError::SegmentOverfilled {
                segment: i,
                live: s.live,
                len: s.len,
                add: n,
            });
        }
        s.live += n;
        Ok(())
    }

    /// Removes `n` live sectors from segment `i` (data overwritten or
    /// deleted elsewhere).
    ///
    /// # Errors
    ///
    /// Returns [`LfsError::SegmentUnderflowed`] if the segment has fewer
    /// than `n` live sectors (the accounting is left untouched).
    pub fn remove_live(&mut self, i: usize, n: u64) -> Result<(), LfsError> {
        let s = &mut self.segments[i];
        if s.live < n {
            return Err(LfsError::SegmentUnderflowed {
                segment: i,
                live: s.live,
                remove: n,
            });
        }
        s.live -= n;
        Ok(())
    }

    /// Marks segment `i` empty (after cleaning).
    pub fn reset(&mut self, i: usize) {
        self.segments[i].live = 0;
    }

    /// Utilization of segment `i` in `[0, 1]`.
    pub fn utilization(&self, i: usize) -> f64 {
        let s = self.segments[i];
        s.live as f64 / s.len as f64
    }

    /// Total live sectors across all segments.
    pub fn total_live(&self) -> u64 {
        self.segments.iter().map(|s| s.live).sum()
    }

    /// Indexes of completely empty segments.
    pub fn empty_segments(&self) -> Vec<usize> {
        (0..self.segments.len())
            .filter(|&i| self.segments[i].live == 0)
            .collect()
    }

    /// The non-empty segment with the lowest utilization (greedy cleaning
    /// victim), if any.
    pub fn best_cleaning_victim(&self) -> Option<usize> {
        (0..self.segments.len())
            .filter(|&i| self.segments[i].live > 0)
            .min_by(|&a, &b| {
                self.utilization(a)
                    .partial_cmp(&self.utilization(b))
                    .expect("utilizations are finite")
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_table_packs_segments() {
        let t = SegmentTable::fixed(1000, 300);
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(2).start, 600);
        assert_eq!(t.get(2).len, 300);
    }

    #[test]
    fn track_matched_segments_follow_boundaries() {
        let tb = TrackBoundaries::from_track_lengths([100, 99, 101]).unwrap();
        let t = SegmentTable::track_matched(&tb);
        assert_eq!(t.len(), 3);
        assert_eq!(
            t.get(1),
            SegmentInfo {
                start: 100,
                len: 99,
                live: 0
            }
        );
    }

    #[test]
    fn liveness_accounting() {
        let mut t = SegmentTable::fixed(1000, 100);
        t.add_live(0, 60).unwrap();
        t.add_live(1, 10).unwrap();
        assert_eq!(t.total_live(), 70);
        assert!((t.utilization(0) - 0.6).abs() < 1e-12);
        t.remove_live(0, 30).unwrap();
        assert_eq!(t.best_cleaning_victim(), Some(1));
        t.reset(1);
        assert_eq!(t.empty_segments().len(), 9);
    }

    #[test]
    fn overfill_is_a_typed_error_and_leaves_state_intact() {
        let mut t = SegmentTable::fixed(100, 50);
        assert_eq!(
            t.add_live(0, 51),
            Err(LfsError::SegmentOverfilled {
                segment: 0,
                live: 0,
                len: 50,
                add: 51,
            })
        );
        assert_eq!(t.get(0).live, 0, "failed add must not change liveness");
    }

    #[test]
    fn underflow_is_a_typed_error_and_leaves_state_intact() {
        let mut t = SegmentTable::fixed(100, 50);
        t.add_live(0, 5).unwrap();
        assert_eq!(
            t.remove_live(0, 6),
            Err(LfsError::SegmentUnderflowed {
                segment: 0,
                live: 5,
                remove: 6,
            })
        );
        assert_eq!(t.get(0).live, 5, "failed remove must not change liveness");
    }
}
