//! Behavioural tests of the file system across personalities: allocation
//! invariants under churn, cache-pressure write-back, and the request-size
//! signatures that distinguish the three variants.

use ffs::{FileSystem, Personality, BLOCK_SECTORS, BYTES_PER_BLOCK};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sim_disk::disk::Disk;
use sim_disk::models;

const MB: u64 = 1 << 20;

fn fs(p: Personality) -> FileSystem {
    FileSystem::format(Disk::new(models::small_test_disk()), p)
}

/// Create/write/delete churn conserves free space exactly, for every
/// personality.
#[test]
fn churn_conserves_space() {
    for p in [
        Personality::Unmodified,
        Personality::FastStart,
        Personality::Traxtent,
    ] {
        let mut f = fs(p);
        let baseline = f.layout().free_blocks();
        let mut rng = StdRng::seed_from_u64(11);
        let mut live = Vec::new();
        for _ in 0..120 {
            if live.is_empty() || rng.gen_bool(0.6) {
                let id = f.create();
                let size = rng.gen_range(1..64 * 1024u64);
                f.write(id, 0, size).expect("space available");
                live.push(id);
            } else {
                let idx = rng.gen_range(0..live.len());
                f.delete(live.swap_remove(idx)).expect("exists");
            }
        }
        for id in live {
            f.delete(id).expect("exists");
        }
        f.sync();
        assert_eq!(f.layout().free_blocks(), baseline, "{p:?} leaked blocks");
    }
}

/// Writing more than the buffer cache holds forces write-back; the data is
/// still fully accounted and readable afterwards.
#[test]
fn cache_pressure_forces_writeback() {
    let mut f = fs(Personality::Unmodified);
    f.set_cache_blocks(64); // 512 KB cache
    let id = f.create();
    f.write(id, 0, 8 * MB).expect("space available");
    let s = f.stats();
    assert!(
        s.sectors_written >= 8 * MB / 512 - 64 * BLOCK_SECTORS,
        "most dirty data must have been written back under pressure"
    );
    f.sync();
    f.read(id, 0, 8 * MB).expect("in range");
}

/// Sparse re-reads after a remount produce cache hits only for blocks
/// actually fetched.
#[test]
fn rereads_hit_the_buffer_cache() {
    let mut f = fs(Personality::Unmodified);
    let id = f.create();
    f.write(id, 0, MB).expect("space available");
    f.remount();
    f.read(id, 0, MB).expect("in range");
    let reads_cold = f.stats().disk_reads;
    f.reset_stats();
    f.read(id, 0, MB).expect("in range");
    assert_eq!(f.stats().disk_reads, 0, "warm re-read must be free");
    assert!(reads_cold > 0);
}

/// The traxtent personality reverts to bounded read-ahead after a
/// non-sequential access (the §4.2.2 worst-case guard).
#[test]
fn traxtent_reverts_on_random_access() {
    let mut f = fs(Personality::Traxtent);
    let id = f.create();
    f.write(id, 0, 4 * MB).expect("space available");
    f.remount();
    // Random access pattern: block 0, then far away, then back.
    f.read(id, 0, 1).expect("in range");
    f.read(id, 3 * MB, 1).expect("in range");
    f.read(id, MB, 1).expect("in range");
    f.reset_stats();
    f.read(id, 2 * MB, 1).expect("in range");
    let s = f.stats();
    // After non-sequential detection, a one-byte read must not drag a whole
    // traxtent (12 blocks on this disk) — at most the seq+1 cluster.
    assert!(
        s.largest_read_sectors <= 4 * BLOCK_SECTORS,
        "random access fetched {} sectors",
        s.largest_read_sectors
    );
}

/// Appending growth keeps each personality's files readable and the sizes
/// exact.
#[test]
fn append_growth_is_exact() {
    for p in [Personality::Unmodified, Personality::Traxtent] {
        let mut f = fs(p);
        let id = f.create();
        let mut size = 0u64;
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..50 {
            let chunk = rng.gen_range(1..3 * BYTES_PER_BLOCK);
            f.write(id, size, chunk).expect("space available");
            size += chunk;
        }
        assert_eq!(f.size_of(id).unwrap(), size);
        f.sync();
        f.read(id, 0, size).expect("in range");
        f.read(id, size - 1, 1).expect("last byte readable");
    }
}

/// Mean request size signature: traxtent requests are track-bounded,
/// unmodified requests reach the 32-block cluster cap.
#[test]
fn request_size_signatures() {
    let run = |p| {
        let mut f = fs(p);
        let id = f.create();
        f.write(id, 0, 16 * MB).expect("space available");
        f.remount();
        f.read(id, 0, 16 * MB).expect("in range");
        f.stats().largest_read_sectors
    };
    assert_eq!(run(Personality::Unmodified), 32 * BLOCK_SECTORS);
    assert_eq!(run(Personality::FastStart), 32 * BLOCK_SECTORS);
    // Small test disk: 200-sector tracks → 12-block traxtents.
    assert_eq!(run(Personality::Traxtent), 12 * BLOCK_SECTORS);
}
