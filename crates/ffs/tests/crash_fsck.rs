//! End-to-end crash-consistency properties: random workloads, a power
//! cut at a random instant, then fsck must hand back a mountable image
//! whose surviving data is bit-exact — all of it reproducible from
//! (seed, cut) alone.

use ffs::fsck::{check, fsck, mount};
use ffs::{FileId, FileSystem, Personality, BLOCK_SECTORS};
use proptest::prelude::*;
use sim_disk::crash::{replay, splitmix, CrashLog, SectorImage, SECTOR_USIZE};
use sim_disk::disk::Disk;
use sim_disk::{models, SimTime};

const MB: u64 = 1 << 20;

/// Drives a deterministic pseudo-random workload: creates, sequential
/// appends, deletes, syncs, and metadata checkpoints, sized to stay
/// well inside the 41 MB test disk and the shadow's slot/extent limits.
fn workload(fs: &mut FileSystem, seed: u64) {
    let mut h = seed;
    let mut next = move || {
        h = splitmix(h);
        h
    };
    let mut live: Vec<FileId> = Vec::new();
    for _ in 0..30 {
        match next() % 10 {
            0..=2 => {
                if live.len() < 10 {
                    live.push(fs.create());
                }
            }
            3..=7 => {
                if live.is_empty() {
                    continue;
                }
                let f = live[(next() % live.len() as u64) as usize];
                let size = fs.size_of(f).expect("file is live");
                if size < 2 * MB {
                    let len = 64 * 1024 + next() % (MB / 2);
                    fs.write(f, size, len).expect("disk has room");
                }
            }
            8 => {
                if live.len() > 1 {
                    let f = live.swap_remove((next() % live.len() as u64) as usize);
                    fs.delete(f).expect("file is live");
                }
            }
            _ => {
                if next() % 2 == 0 {
                    fs.sync();
                } else {
                    fs.checkpoint_metadata();
                }
            }
        }
    }
}

/// Formats, arms the crash shadow, runs the workload; returns the file
/// system and the mkfs-state image a crash replay starts from.
fn build(seed: u64, personality: Personality, finish_clean: bool) -> (FileSystem, SectorImage) {
    let mut fs = FileSystem::format(Disk::new(models::small_test_disk()), personality);
    fs.enable_crash_shadow(seed ^ 0x0ff5_cafe);
    let initial = fs.format_image();
    workload(&mut fs, seed);
    if finish_clean {
        fs.sync();
        fs.checkpoint_metadata();
    }
    (fs, initial)
}

/// Ground truth computed independently of `crash::apply_cut`: the
/// payload of the last write covering `lbn` that was durable by `cut`
/// (writes are FCFS, so log order is media order).
fn expected_sector(log: &CrashLog, cut: SimTime, lbn: u64) -> Option<Vec<u8>> {
    let mut out = None;
    for rec in &log.records {
        if lbn < rec.lbn || lbn >= rec.lbn + rec.len {
            continue;
        }
        let i = (lbn - rec.lbn) as usize;
        if rec.durable[i] <= cut {
            let p = rec
                .payload
                .as_ref()
                .expect("every ffs write carries a payload");
            out = Some(p[i * SECTOR_USIZE..(i + 1) * SECTOR_USIZE].to_vec());
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The tentpole invariant: for ANY workload and ANY cut point, fsck
    /// yields a mountable image (check passes), is idempotent (a second
    /// pass repairs nothing and rewrites nothing), never touches data
    /// sectors, every mounted file's bytes match an independent
    /// durability oracle, and the whole pipeline is bit-reproducible
    /// from (seed, cut).
    #[test]
    fn any_cut_recovers_to_a_mountable_consistent_image(
        seed in 0u64..u64::MAX,
        frac in 0u64..=1000,
        trax in 0u64..2,
    ) {
        let p = if trax == 1 { Personality::Traxtent } else { Personality::Unmodified };
        let (mut fs, initial) = build(seed, p, false);
        prop_assert!(fs.shadow_error().is_none(), "{:?}", fs.shadow_error());
        let log = fs.disk_mut().take_crash_log().expect("shadow attaches a log");
        let cut = SimTime::from_ns(log.horizon().as_ns() * frac / 1000);

        let mut img = replay(&initial, &log, cut).expect("payloads are complete");
        let pre_fsck = img.clone();
        let report = fsck(&mut img, fs.layout());
        if let Err(e) = check(&img, fs.layout()) {
            prop_assert!(false, "image not mountable after fsck: {e} ({report:?})");
        }

        let mut again = img.clone();
        let second = fsck(&mut again, fs.layout());
        prop_assert!(second.clean(), "second fsck repaired: {second:?}");
        prop_assert_eq!(&again, &img, "second fsck rewrote the image");

        let recovered = mount(&img, fs.layout()).expect("checked above");
        for f in recovered.files.values() {
            for b in f.blocks() {
                let base = b * BLOCK_SECTORS;
                for s in base..base + BLOCK_SECTORS {
                    let got = img.read(s);
                    prop_assert_eq!(got, pre_fsck.read(s), "fsck touched data sector {}", s);
                    match expected_sector(&log, cut, s) {
                        Some(want) => prop_assert_eq!(
                            &got[..], &want[..],
                            "file {} sector {} diverges from the durability oracle", f.id, s
                        ),
                        None => prop_assert!(
                            got.iter().all(|&x| x == 0),
                            "file {} sector {} was never durably written but is nonzero", f.id, s
                        ),
                    }
                }
            }
        }

        // Bit-reproducibility: an identical run cut at the same instant
        // recovers to the identical image and report.
        let (mut fs2, initial2) = build(seed, p, false);
        let log2 = fs2.disk_mut().take_crash_log().expect("shadow attaches a log");
        let mut img2 = replay(&initial2, &log2, cut).expect("payloads are complete");
        let report2 = fsck(&mut img2, fs2.layout());
        prop_assert_eq!(report2, report);
        prop_assert_eq!(img2, img);
    }

    /// A clean shutdown (sync + metadata checkpoint, cut after
    /// everything is durable) needs no repair and recovers every file
    /// exactly: ids, sizes, and block lists match the in-memory truth.
    #[test]
    fn clean_shutdown_recovers_everything(seed in 0u64..u64::MAX, trax in 0u64..2) {
        let p = if trax == 1 { Personality::Traxtent } else { Personality::Unmodified };
        let (mut fs, initial) = build(seed, p, true);
        prop_assert!(fs.shadow_error().is_none(), "{:?}", fs.shadow_error());
        let truth = fs.live_files();
        let log = fs.disk_mut().take_crash_log().expect("shadow attaches a log");
        let cut = log.horizon();

        let mut img = replay(&initial, &log, cut).expect("payloads are complete");
        let report = fsck(&mut img, fs.layout());
        prop_assert!(report.clean(), "clean shutdown needed repair: {report:?}");
        let recovered = mount(&img, fs.layout()).expect("clean image mounts");

        prop_assert_eq!(recovered.files.len(), truth.len());
        for (id, size, blocks) in truth {
            let f = &recovered.files[&id.raw()];
            prop_assert_eq!(f.size_bytes, size);
            prop_assert_eq!(f.blocks().collect::<Vec<_>>(), blocks);
        }
    }
}
