//! The buffer cache: a bounded LRU over file-system blocks.
//!
//! Blocks are identified by their *disk* block number. The cache tracks
//! clean/dirty state; eviction hands dirty victims back to the caller (the
//! file system), which is responsible for writing them out.

use std::collections::{BTreeMap, HashMap};

/// A bounded LRU block cache.
///
/// Recency is kept in a parallel `BTreeMap` keyed by a monotone stamp, so
/// eviction is O(log n) rather than a scan.
#[derive(Debug)]
pub struct BufferCache {
    capacity: usize,
    /// block → (dirty, recency stamp)
    map: HashMap<u64, (bool, u64)>,
    /// recency stamp → block (oldest first)
    lru: BTreeMap<u64, u64>,
    stamp: u64,
    hits: u64,
    misses: u64,
}

impl BufferCache {
    /// Creates a cache holding up to `capacity` blocks.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        BufferCache {
            capacity,
            map: HashMap::new(),
            lru: BTreeMap::new(),
            stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of cached blocks.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// (hits, misses) recorded by [`contains`](Self::contains).
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Whether `block` is cached; refreshes recency and records a
    /// hit/miss.
    pub fn contains(&mut self, block: u64) -> bool {
        if self.map.contains_key(&block) {
            self.touch(block);
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Whether `block` is cached, without touching recency or stats.
    pub fn peek(&self, block: u64) -> bool {
        self.map.contains_key(&block)
    }

    /// Inserts `block` (clean unless already dirty). Returns dirty blocks
    /// evicted to make room, which the caller must write out.
    pub fn insert(&mut self, block: u64) -> Vec<u64> {
        let evicted = if self.map.contains_key(&block) {
            Vec::new()
        } else {
            self.make_room()
        };
        self.map.entry(block).or_insert((false, 0));
        self.touch(block);
        evicted
    }

    /// Marks `block` dirty, inserting it if absent. Returns evicted dirty
    /// blocks.
    pub fn insert_dirty(&mut self, block: u64) -> Vec<u64> {
        let evicted = if self.map.contains_key(&block) {
            Vec::new()
        } else {
            self.make_room()
        };
        self.map.entry(block).or_insert((false, 0)).0 = true;
        self.touch(block);
        evicted
    }

    /// Whether `block` is cached and dirty.
    pub fn is_dirty(&self, block: u64) -> bool {
        self.map.get(&block).map(|e| e.0).unwrap_or(false)
    }

    /// Marks `block` clean (after write-back); no-op if absent.
    pub fn mark_clean(&mut self, block: u64) {
        if let Some(e) = self.map.get_mut(&block) {
            e.0 = false;
        }
    }

    /// Drops `block` regardless of state (file deletion).
    pub fn discard(&mut self, block: u64) {
        if let Some((_, stamp)) = self.map.remove(&block) {
            self.lru.remove(&stamp);
        }
    }

    /// All dirty blocks, sorted (for sync).
    pub fn dirty_blocks(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .map
            .iter()
            .filter(|(_, e)| e.0)
            .map(|(&b, _)| b)
            .collect();
        v.sort_unstable();
        v
    }

    /// Empties the cache (remount). Dirty data is dropped — callers must
    /// sync first.
    pub fn clear(&mut self) {
        self.map.clear();
        self.lru.clear();
    }

    /// Moves `block` to most-recently-used.
    fn touch(&mut self, block: u64) {
        self.stamp += 1;
        let e = self.map.get_mut(&block).expect("touch of cached block");
        if e.1 != 0 {
            self.lru.remove(&e.1);
        }
        e.1 = self.stamp;
        self.lru.insert(self.stamp, block);
    }

    /// Evicts LRU entries until one slot is free; returns dirty victims.
    fn make_room(&mut self) -> Vec<u64> {
        let mut dirty = Vec::new();
        while self.map.len() >= self.capacity {
            let (&stamp, &victim) = self.lru.iter().next().expect("lru tracks every entry");
            self.lru.remove(&stamp);
            if self.map.remove(&victim).expect("victim cached").0 {
                dirty.push(victim);
            }
        }
        dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_accounting() {
        let mut c = BufferCache::new(4);
        assert!(!c.contains(1));
        c.insert(1);
        assert!(c.contains(1));
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn lru_eviction_returns_dirty_victims() {
        let mut c = BufferCache::new(2);
        c.insert_dirty(1);
        c.insert(2);
        let evicted = c.insert(3); // evicts 1 (oldest), which is dirty
        assert_eq!(evicted, vec![1]);
        assert!(!c.peek(1));
        assert!(c.peek(2) && c.peek(3));
    }

    #[test]
    fn recency_updates_on_contains() {
        let mut c = BufferCache::new(2);
        c.insert(1);
        c.insert(2);
        assert!(c.contains(1)); // refresh 1
        let evicted = c.insert(3); // evicts 2
        assert!(evicted.is_empty());
        assert!(c.peek(1) && !c.peek(2));
    }

    #[test]
    fn dirty_lifecycle() {
        let mut c = BufferCache::new(4);
        c.insert_dirty(7);
        assert!(c.is_dirty(7));
        assert_eq!(c.dirty_blocks(), vec![7]);
        c.mark_clean(7);
        assert!(!c.is_dirty(7));
        assert!(c.dirty_blocks().is_empty());
        c.discard(7);
        assert!(!c.peek(7));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = BufferCache::new(0);
    }

    #[test]
    fn clear_empties() {
        let mut c = BufferCache::new(4);
        c.insert(1);
        c.insert_dirty(2);
        c.clear();
        assert!(c.is_empty());
    }
}
