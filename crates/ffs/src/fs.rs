//! The file system proper: inodes, the read path with per-personality
//! read-ahead, the clustered write-back path, and small synchronous
//! metadata writes for create/delete.
//!
//! Timing model: the file system owns the simulated clock. Reads are
//! synchronous (the application waits); write-back and metadata-adjacent
//! flushes are issued asynchronously at the current clock and contend for
//! the disk with later reads (the drive services commands FCFS). `sync`
//! flushes everything and advances the clock to disk idle, which is how a
//! workload's run time is measured.

use crate::cache::BufferCache;
use crate::image;
use crate::layout::{Layout, Personality, BLOCKS_PER_GROUP, BLOCK_SECTORS, BYTES_PER_BLOCK};
use sim_disk::crash::SectorImage;
use sim_disk::disk::{Disk, Request};
use sim_disk::{SimDur, SimTime};
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Identifies an open file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(u64);

impl FileId {
    /// The raw id (as recorded in on-media inodes).
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Errors from file-system operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsError {
    /// No free blocks remain.
    NoSpace,
    /// The file does not exist.
    NoSuchFile(FileId),
    /// Read beyond end of file.
    BeyondEof {
        /// The file whose end was passed.
        file: FileId,
        /// The offending byte offset.
        offset: u64,
    },
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NoSpace => write!(f, "no free blocks remain"),
            FsError::NoSuchFile(id) => write!(f, "file {id:?} does not exist"),
            FsError::BeyondEof { file, offset } => {
                write!(f, "read beyond end of file {file:?} at offset {offset}")
            }
        }
    }
}

impl Error for FsError {}

/// A condition the crash shadow could not represent on media. The
/// shadow latches the first one rather than failing the (infallible)
/// file-system call that hit it; crash harnesses check
/// [`FileSystem::shadow_error`] before trusting an image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShadowError {
    /// A group ran out of inode slots; the new file exists in memory but
    /// never reaches media.
    InodeSlotsFull {
        /// The block group whose slots filled.
        group: u64,
    },
    /// A file fragmented past what one inode sector can describe; its
    /// on-media extent list is truncated.
    TooManyExtents {
        /// The file's raw id.
        id: u64,
        /// How many extents it actually has.
        have: usize,
    },
}

impl fmt::Display for ShadowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShadowError::InodeSlotsFull { group } => {
                write!(f, "group {group} has no free inode slots")
            }
            ShadowError::TooManyExtents { id, have } => write!(
                f,
                "file {id} spans {have} extents; its on-media inode is truncated"
            ),
        }
    }
}

impl Error for ShadowError {}

/// On-media bookkeeping for crash simulation: which inode slot each file
/// occupies, per-group metadata generations, and the content salt for
/// synthesized data payloads. Present only when the crash shadow is
/// enabled; the default timing-only path never allocates one.
#[derive(Debug)]
struct Shadow {
    /// Salt mixed into synthesized data-sector contents.
    salt: u64,
    /// Monotonic data-write counter (distinguishes overwrites).
    seq: u64,
    /// Metadata generation per on-media group.
    generations: Vec<u64>,
    /// Inode slot occupancy per inode-bearing group.
    slots: Vec<[Option<FileId>; image::INODE_SLOTS]>,
    /// First unrepresentable condition hit, if any.
    error: Option<ShadowError>,
}

/// Aggregate I/O statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FsStats {
    /// Disk read commands issued.
    pub disk_reads: u64,
    /// Disk write commands issued.
    pub disk_writes: u64,
    /// Sectors read from disk.
    pub sectors_read: u64,
    /// Sectors written to disk.
    pub sectors_written: u64,
    /// Largest single read request, in sectors.
    pub largest_read_sectors: u64,
}

impl FsStats {
    /// Mean disk request size in bytes (reads and writes combined).
    pub fn mean_request_bytes(&self) -> f64 {
        let reqs = self.disk_reads + self.disk_writes;
        if reqs == 0 {
            return 0.0;
        }
        (self.sectors_read + self.sectors_written) as f64 * 512.0 / reqs as f64
    }
}

#[derive(Debug)]
struct Inode {
    /// File block index → disk block number.
    blocks: Vec<u64>,
    size_bytes: u64,
    /// Sequential-access detector state.
    last_read: Option<u64>,
    seq_count: u64,
    accessed: bool,
    nonseq_seen: bool,
}

/// The FFS instance: layout + buffer cache + simulated clock over one disk.
#[derive(Debug)]
pub struct FileSystem {
    disk: Disk,
    layout: Layout,
    cache: BufferCache,
    clock: SimTime,
    files: HashMap<FileId, Inode>,
    /// Prefetched blocks still in flight: block → instant the data arrives.
    inflight: HashMap<u64, SimTime>,
    next_id: u64,
    stats: FsStats,
    /// Cap on clustered transfers, in blocks (32 in FreeBSD).
    cluster_cap: u64,
    /// Crash-consistency shadow (None on the default timing-only path).
    shadow: Option<Box<Shadow>>,
}

impl FileSystem {
    /// Default buffer-cache size: 8192 blocks = 64 MB.
    pub const DEFAULT_CACHE_BLOCKS: usize = 8192;

    /// Mounts a freshly formatted file system.
    pub fn format(disk: Disk, personality: Personality) -> Self {
        let boundaries = boundaries_of(&disk);
        let capacity = disk.geometry().capacity_lbns();
        let layout = Layout::format(personality, boundaries, capacity);
        Self::with_layout(disk, layout)
    }

    /// Mounts a freshly formatted file system whose boundary table came
    /// from a noisy extraction: tracks below `threshold` confidence are
    /// handled untracked (see [`Layout::format_confident`]).
    pub fn format_confident(
        disk: Disk,
        personality: Personality,
        boundaries: &traxtent::ConfidentBoundaries,
        threshold: f64,
    ) -> Self {
        let capacity = disk.geometry().capacity_lbns();
        let layout = Layout::format_confident(personality, boundaries, threshold, capacity);
        Self::with_layout(disk, layout)
    }

    fn with_layout(disk: Disk, layout: Layout) -> Self {
        FileSystem {
            disk,
            layout,
            cache: BufferCache::new(Self::DEFAULT_CACHE_BLOCKS),
            clock: SimTime::ZERO,
            files: HashMap::new(),
            inflight: HashMap::new(),
            next_id: 1,
            stats: FsStats::default(),
            cluster_cap: 32,
            shadow: None,
        }
    }

    /// Turns on crash simulation: reserves each group's metadata block,
    /// attaches a crash log to the drive, and starts carrying an
    /// on-media payload (the [`crate::image`] format for metadata,
    /// salted patterns for data) on every write the file system issues.
    /// Data contents are synthesized from `salt`, so two runs with the
    /// same salt and workload produce bit-identical media.
    ///
    /// Call immediately after formatting, before any file exists — data
    /// allocated before the reservation could sit where metadata writes
    /// land.
    ///
    /// # Panics
    ///
    /// Panics if files already exist.
    pub fn enable_crash_shadow(&mut self, salt: u64) {
        assert!(
            self.files.is_empty(),
            "enable the crash shadow on a freshly formatted file system"
        );
        self.layout.reserve_group_metadata();
        self.disk.enable_crash_log();
        let groups = image::ngroups(self.layout.blocks()) as usize;
        let inode_groups = (self.layout.blocks() / BLOCKS_PER_GROUP) as usize;
        self.shadow = Some(Box::new(Shadow {
            salt,
            seq: 0,
            generations: vec![0; groups],
            slots: vec![[None; image::INODE_SLOTS]; inode_groups],
            error: None,
        }));
    }

    /// The first condition the crash shadow could not put on media, if
    /// any. A harness that sees `Some` should discard the run (the
    /// on-media image no longer tracks the in-memory state).
    pub fn shadow_error(&self) -> Option<ShadowError> {
        self.shadow.as_ref().and_then(|s| s.error)
    }

    /// The clean on-media image as of now: every group's metadata block
    /// encoded at its current generation, no data sectors. Captured right
    /// after [`enable_crash_shadow`](Self::enable_crash_shadow) it is the
    /// mkfs state a crash replay starts from.
    ///
    /// # Panics
    ///
    /// Panics if the crash shadow is not enabled.
    pub fn format_image(&self) -> SectorImage {
        let sh = self.shadow.as_ref().expect("crash shadow not enabled");
        let mut img = SectorImage::new();
        for g in 0..image::ngroups(self.layout.blocks()) {
            let (bytes, _) = self.group_meta_bytes(sh, g, sh.generations[g as usize]);
            let base = image::meta_lbn(g);
            for (i, chunk) in bytes.chunks(sim_disk::crash::SECTOR_USIZE).enumerate() {
                let mut s = [0u8; sim_disk::crash::SECTOR_USIZE];
                s.copy_from_slice(chunk);
                img.write(base + i as u64, &s);
            }
        }
        img
    }

    /// Writes every group's metadata block synchronously (the periodic
    /// metadata checkpoint a real FFS performs). Inodes and bitmaps not
    /// checkpointed — here or by a create/delete — since their last
    /// change are stale on media and it is fsck's job to reconcile them
    /// after a crash. Returns the clock at completion.
    ///
    /// # Panics
    ///
    /// Panics if the crash shadow is not enabled (without it the write
    /// would carry no payload and the checkpoint would be meaningless).
    pub fn checkpoint_metadata(&mut self) -> SimTime {
        assert!(self.shadow.is_some(), "crash shadow not enabled");
        for g in 0..image::ngroups(self.layout.blocks()) {
            let c = self.disk.service(
                Request::write(image::meta_lbn(g), BLOCK_SECTORS),
                self.clock,
            );
            self.stats.disk_writes += 1;
            self.stats.sectors_written += BLOCK_SECTORS;
            self.clock = c.completion;
            self.attach_group_payload(g);
        }
        self.clock
    }

    /// Encodes group `g`'s metadata block at `generation` from the
    /// current in-memory state. Files too fragmented for one inode
    /// sector are truncated on media and reported in the second return.
    fn group_meta_bytes(
        &self,
        sh: &Shadow,
        g: u64,
        generation: u64,
    ) -> (Vec<u8>, Option<ShadowError>) {
        let base = g * BLOCKS_PER_GROUP;
        let alloc: Vec<bool> = (0..image::group_blocks(g, self.layout.blocks()))
            .map(|i| !self.layout.is_free(base + i))
            .collect();
        let mut slots: Vec<Option<image::InodeRec>> = vec![None; image::INODE_SLOTS];
        let mut err = None;
        if let Some(owners) = sh.slots.get(g as usize) {
            for (si, owner) in owners.iter().enumerate() {
                let Some(fid) = owner else { continue };
                let inode = &self.files[fid];
                let mut extents = image::extents_of(&inode.blocks);
                if extents.len() > image::MAX_EXTENTS {
                    err = Some(ShadowError::TooManyExtents {
                        id: fid.0,
                        have: extents.len(),
                    });
                    extents.truncate(image::MAX_EXTENTS);
                }
                slots[si] = Some(image::InodeRec {
                    id: fid.0,
                    size_bytes: inode.size_bytes,
                    extents,
                });
            }
        }
        let bytes = image::encode_group(g, generation, &alloc, &slots)
            .expect("extent lists are clamped to MAX_EXTENTS");
        (bytes, err)
    }

    /// Attaches group `g`'s freshly encoded metadata block as the payload
    /// of the metadata write just issued, bumping its generation. No-op
    /// without the shadow.
    fn attach_group_payload(&mut self, g: u64) {
        let Some(sh) = self.shadow.as_deref() else {
            return;
        };
        let generation = sh.generations[g as usize] + 1;
        let (bytes, err) = self.group_meta_bytes(sh, g, generation);
        let sh = self.shadow.as_deref_mut().expect("checked above");
        sh.generations[g as usize] = generation;
        if let Some(e) = err {
            sh.error.get_or_insert(e);
        }
        self.disk.note_write_payload(&bytes);
    }

    /// Attaches a synthesized data payload (salted by the write sequence
    /// number, so overwrites are distinguishable) to the data write just
    /// issued. No-op without the shadow.
    fn attach_data_payload(&mut self, lbn: u64, sectors: u64) {
        let Some(sh) = self.shadow.as_deref_mut() else {
            return;
        };
        sh.seq += 1;
        let salt = sh.salt ^ sh.seq.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let bytes = sim_disk::crash::pattern_payload(salt, lbn, sectors);
        self.disk.note_write_payload(&bytes);
    }

    /// Replaces the buffer cache with one of `blocks` blocks (dropping the
    /// current contents; call before running workloads).
    pub fn set_cache_blocks(&mut self, blocks: usize) {
        self.cache = BufferCache::new(blocks);
    }

    /// The current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// The layout (for inspection).
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// I/O statistics so far.
    pub fn stats(&self) -> FsStats {
        self.stats
    }

    /// Buffer-cache `(hits, misses)` so far.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.cache.stats()
    }

    /// Publishes the file system's activity under `ffs.*`: buffer-cache
    /// hits/misses, where allocations were placed (track-aligned traxtent
    /// runs vs the track-unaware fallback), free-space fragmentation and
    /// exclusion high-water marks (parts per million), and disk request
    /// totals.
    pub fn export_metrics(&self, reg: &traxtent::obs::Registry) {
        let (hits, misses) = self.cache.stats();
        reg.add("ffs.cache.hits", hits);
        reg.add("ffs.cache.misses", misses);
        let a = self.layout.alloc_stats();
        reg.add("ffs.alloc.sequential", a.sequential);
        reg.add("ffs.alloc.track_aligned", a.track_aligned);
        reg.add("ffs.alloc.fallback", a.fallback);
        reg.set_max(
            "ffs.fragmentation_ppm",
            (self.layout.fragmentation() * 1e6) as u64,
        );
        reg.set_max(
            "ffs.excluded_ppm",
            (self.layout.excluded_fraction() * 1e6) as u64,
        );
        reg.add("ffs.disk.reads", self.stats.disk_reads);
        reg.add("ffs.disk.writes", self.stats.disk_writes);
        reg.add("ffs.disk.sectors_read", self.stats.sectors_read);
        reg.add("ffs.disk.sectors_written", self.stats.sectors_written);
    }

    /// Resets statistics.
    pub fn reset_stats(&mut self) {
        self.stats = FsStats::default();
    }

    /// The disk (for inspection).
    pub fn disk(&self) -> &Disk {
        &self.disk
    }

    /// The disk, mutably (crash harnesses detach its log with
    /// [`Disk::take_crash_log`]).
    pub fn disk_mut(&mut self) -> &mut Disk {
        &mut self.disk
    }

    /// Every live file as `(id, size_bytes, blocks)`, in id order — the
    /// in-memory truth crash harnesses compare recovered images against.
    pub fn live_files(&self) -> Vec<(FileId, u64, Vec<u64>)> {
        let mut out: Vec<_> = self
            .files
            .iter()
            .map(|(id, inode)| (*id, inode.size_bytes, inode.blocks.clone()))
            .collect();
        out.sort_by_key(|&(id, _, _)| id);
        out
    }

    /// The size of a file in bytes.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NoSuchFile`] for unknown ids.
    pub fn size_of(&self, file: FileId) -> Result<u64, FsError> {
        Ok(self
            .files
            .get(&file)
            .ok_or(FsError::NoSuchFile(file))?
            .size_bytes)
    }

    /// Creates an empty file, charging a synchronous one-block metadata
    /// write (inode + directory update).
    pub fn create(&mut self) -> FileId {
        let id = FileId(self.next_id);
        self.next_id += 1;
        self.files.insert(
            id,
            Inode {
                blocks: Vec::new(),
                size_bytes: 0,
                last_read: None,
                seq_count: 0,
                accessed: false,
                nonseq_seen: false,
            },
        );
        if let Some(sh) = self.shadow.as_deref_mut() {
            let g = (id.0 % (self.layout.blocks() / BLOCKS_PER_GROUP)) as usize;
            match sh.slots[g].iter_mut().find(|s| s.is_none()) {
                Some(slot) => *slot = Some(id),
                None => {
                    sh.error
                        .get_or_insert(ShadowError::InodeSlotsFull { group: g as u64 });
                }
            }
        }
        self.metadata_write(id);
        id
    }

    /// Deletes a file, releasing its blocks and charging a synchronous
    /// metadata write.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NoSuchFile`] for unknown ids.
    pub fn delete(&mut self, file: FileId) -> Result<(), FsError> {
        let inode = self.files.remove(&file).ok_or(FsError::NoSuchFile(file))?;
        for b in inode.blocks {
            self.cache.discard(b);
            self.inflight.remove(&b);
            self.layout.release(b);
        }
        if let Some(sh) = self.shadow.as_deref_mut() {
            let g = (file.0 % (self.layout.blocks() / BLOCKS_PER_GROUP)) as usize;
            for slot in sh.slots[g].iter_mut() {
                if *slot == Some(file) {
                    *slot = None;
                }
            }
        }
        self.metadata_write(file);
        Ok(())
    }

    /// Synchronous small write to the file's block group's metadata area.
    fn metadata_write(&mut self, file: FileId) {
        // The inode block for the file's group: the first block of group g.
        let group = file.0 % (self.layout.blocks() / BLOCKS_PER_GROUP);
        let lbn = group * BLOCKS_PER_GROUP * BLOCK_SECTORS;
        let c = self
            .disk
            .service(Request::write(lbn, BLOCK_SECTORS), self.clock);
        self.stats.disk_writes += 1;
        self.stats.sectors_written += BLOCK_SECTORS;
        self.clock = c.completion;
        self.attach_group_payload(group);
    }

    /// Reads `len` bytes at `offset`. Returns when the data is available
    /// (cache hits cost no simulated time).
    ///
    /// # Errors
    ///
    /// Returns [`FsError::BeyondEof`] if the range extends past end of file
    /// and [`FsError::NoSuchFile`] for unknown ids.
    pub fn read(&mut self, file: FileId, offset: u64, len: u64) -> Result<(), FsError> {
        if len == 0 {
            return Ok(());
        }
        {
            let inode = self.files.get(&file).ok_or(FsError::NoSuchFile(file))?;
            if offset + len > inode.size_bytes {
                return Err(FsError::BeyondEof {
                    file,
                    offset: offset + len,
                });
            }
        }
        let first = offset / BYTES_PER_BLOCK;
        let last = (offset + len - 1) / BYTES_PER_BLOCK;
        for fb in first..=last {
            self.read_block(file, fb)?;
        }
        Ok(())
    }

    /// Ensures file block `fb` is cached, fetching a read-ahead cluster on
    /// a miss and keeping one prefetch outstanding per sequential stream
    /// (unmodified FreeBSD "attempts to have at least one outstanding
    /// request for each active data stream", §4.2.2).
    fn read_block(&mut self, file: FileId, fb: u64) -> Result<(), FsError> {
        let db = {
            let inode = self.files.get(&file).ok_or(FsError::NoSuchFile(file))?;
            inode.blocks[fb as usize]
        };
        if self.cache.contains(db) {
            let inode = self.files.get_mut(&file).expect("checked above");
            update_seq(inode, fb);
            return Ok(());
        }
        if let Some(&ready) = self.inflight.get(&db) {
            // The prefetch covering this block is in flight. First queue the
            // *next* prefetch behind it — before blocking — so the drive
            // always has a request to start on (the command-queueing overlap
            // of §3.2); then wait and absorb the arrived request.
            let arrived: Vec<u64> = self
                .inflight
                .iter()
                .filter(|&(_, &r)| r == ready)
                .map(|(&b, _)| b)
                .collect();
            let next_fb = fb + arrived.len() as u64;
            self.maybe_prefetch(file, next_fb);
            self.clock = self.clock.max(ready);
            for b in &arrived {
                self.inflight.remove(b);
                for victim in self.cache.insert(*b) {
                    self.flush_block(victim);
                }
            }
            let inode = self.files.get_mut(&file).expect("checked above");
            update_seq(inode, fb);
            return Ok(());
        }

        // Demand miss: fetch a cluster synchronously.
        let ra_len = self.plan_fetch(file, fb);
        let lbn = self.layout.block_to_lbn(db);
        let c = self
            .disk
            .service(Request::read(lbn, ra_len * BLOCK_SECTORS), self.clock);
        self.stats.disk_reads += 1;
        self.stats.sectors_read += ra_len * BLOCK_SECTORS;
        self.stats.largest_read_sectors =
            self.stats.largest_read_sectors.max(ra_len * BLOCK_SECTORS);
        self.clock = c.completion;
        for i in 0..ra_len {
            for victim in self.cache.insert(db + i) {
                self.flush_block(victim);
            }
        }
        let inode = self.files.get_mut(&file).expect("checked above");
        update_seq(inode, fb);
        self.maybe_prefetch(file, fb + ra_len);
        Ok(())
    }

    /// Sizes a fetch starting at file block `fb` according to the
    /// personality.
    fn plan_fetch(&self, file: FileId, fb: u64) -> u64 {
        let inode = &self.files[&file];
        let db = inode.blocks[fb as usize];
        let contig = contiguous_run(inode, fb, &self.cache, self.cluster_cap * 4);
        let seq = inode.seq_count.max(1);
        let ra = match self.layout.personality() {
            Personality::Unmodified => (seq + 1).min(contig).min(self.cluster_cap),
            Personality::FastStart => {
                if !inode.accessed {
                    contig.min(self.cluster_cap)
                } else {
                    (seq + 1).min(contig).min(self.cluster_cap)
                }
            }
            Personality::Traxtent => {
                if !self.layout.block_trusted(db) {
                    // The extraction was not confident about this track's
                    // boundaries; clipping at them would be arbitrary.
                    // Degrade to the unmodified sizing.
                    (seq + 1).min(contig).min(self.cluster_cap)
                } else if !inode.nonseq_seen {
                    // Fetch the rest of the traxtent, never crossing a
                    // track boundary (§4.2.2, "traxtent-sized access").
                    contig.min(self.layout.traxtent_run(db))
                } else {
                    (seq + 1)
                        .min(contig)
                        .min(self.cluster_cap)
                        .min(self.layout.traxtent_run(db))
                }
            }
        };
        ra.max(1)
    }

    /// Issues an asynchronous prefetch for the run starting at file block
    /// `fb`, unless the file ends, the pattern is non-sequential, or data is
    /// already cached/in flight.
    fn maybe_prefetch(&mut self, file: FileId, fb: u64) {
        let Some(inode) = self.files.get(&file) else {
            return;
        };
        if fb as usize >= inode.blocks.len() || inode.nonseq_seen {
            return;
        }
        let db = inode.blocks[fb as usize];
        if self.cache.peek(db) || self.inflight.contains_key(&db) {
            return;
        }
        let len = self.plan_fetch(file, fb);
        let lbn = self.layout.block_to_lbn(db);
        let c = self
            .disk
            .service(Request::read(lbn, len * BLOCK_SECTORS), self.clock);
        self.stats.disk_reads += 1;
        self.stats.sectors_read += len * BLOCK_SECTORS;
        self.stats.largest_read_sectors = self.stats.largest_read_sectors.max(len * BLOCK_SECTORS);
        for i in 0..len {
            self.inflight.insert(db + i, c.completion);
        }
    }

    /// Writes `len` bytes at `offset`, extending the file as needed. Data
    /// lands in the write-back cache; full clusters are committed to disk
    /// asynchronously.
    ///
    /// # Errors
    ///
    /// Returns [`FsError::NoSpace`] when allocation fails (partial writes
    /// are kept) and [`FsError::NoSuchFile`] for unknown ids.
    pub fn write(&mut self, file: FileId, offset: u64, len: u64) -> Result<(), FsError> {
        if len == 0 {
            return Ok(());
        }
        self.files.get(&file).ok_or(FsError::NoSuchFile(file))?;
        let first = offset / BYTES_PER_BLOCK;
        let last = (offset + len - 1) / BYTES_PER_BLOCK;
        for fb in first..=last {
            // Allocate if beyond current allocation.
            let nblocks = self.files[&file].blocks.len() as u64;
            if fb >= nblocks {
                debug_assert_eq!(fb, nblocks, "writes are block-continuous");
                let prev = self.files[&file].blocks.last().copied();
                let hint = (last - fb + 1).min(self.cluster_cap);
                let db = self.layout.alloc_next(prev, hint).ok_or(FsError::NoSpace)?;
                self.files.get_mut(&file).expect("exists").blocks.push(db);
            }
            let db = self.files[&file].blocks[fb as usize];
            // A partial overwrite of an uncached existing block reads it
            // first (read-modify-write at block granularity).
            let partial = (fb == first && !offset.is_multiple_of(BYTES_PER_BLOCK))
                || (fb == last && !(offset + len).is_multiple_of(BYTES_PER_BLOCK));
            let existed = fb < nblocks;
            if partial && existed && !self.cache.peek(db) {
                let lbn = self.layout.block_to_lbn(db);
                let c = self
                    .disk
                    .service(Request::read(lbn, BLOCK_SECTORS), self.clock);
                self.stats.disk_reads += 1;
                self.stats.sectors_read += BLOCK_SECTORS;
                self.clock = c.completion;
            }
            for victim in self.cache.insert_dirty(db) {
                self.flush_block(victim);
            }
            // Commit a full cluster as soon as it exists (FFS behaviour).
            self.maybe_commit_cluster(db);
        }
        let inode = self.files.get_mut(&file).expect("exists");
        inode.size_bytes = inode.size_bytes.max(offset + len);
        Ok(())
    }

    /// If the dirty run containing `db` reached the cluster limit, write it
    /// out (asynchronously: the clock does not advance).
    fn maybe_commit_cluster(&mut self, db: u64) {
        let limit = match self.layout.personality() {
            Personality::Traxtent if self.layout.block_trusted(run_start(&self.cache, db)) => {
                self.layout.traxtent_run(run_start(&self.cache, db))
            }
            _ => self.cluster_cap,
        };
        // Find the dirty run around db.
        let start = run_start(&self.cache, db);
        let mut end = db + 1;
        while self.cache.is_dirty(end) {
            end += 1;
        }
        if end - start >= limit {
            self.write_run(start, end - start);
        }
    }

    /// Issues one disk write for blocks `[start, start+len)` and marks them
    /// clean. Does not advance the application clock (write-back).
    fn write_run(&mut self, start: u64, len: u64) {
        let lbn = self.layout.block_to_lbn(start);
        let _ = self
            .disk
            .service(Request::write(lbn, len * BLOCK_SECTORS), self.clock);
        self.stats.disk_writes += 1;
        self.stats.sectors_written += len * BLOCK_SECTORS;
        self.attach_data_payload(lbn, len * BLOCK_SECTORS);
        for b in start..start + len {
            self.cache.mark_clean(b);
        }
    }

    /// Write-back for an evicted dirty block (alone; its neighbours were
    /// already clean or they would still be cached).
    fn flush_block(&mut self, b: u64) {
        let lbn = self.layout.block_to_lbn(b);
        let _ = self
            .disk
            .service(Request::write(lbn, BLOCK_SECTORS), self.clock);
        self.stats.disk_writes += 1;
        self.stats.sectors_written += BLOCK_SECTORS;
        self.attach_data_payload(lbn, BLOCK_SECTORS);
    }

    /// Flushes all dirty data and waits for the disk to go idle. Returns
    /// the clock at completion.
    pub fn sync(&mut self) -> SimTime {
        let dirty = self.cache.dirty_blocks();
        // Coalesce into contiguous runs, clipped per the write-back planner.
        let mut i = 0;
        while i < dirty.len() {
            let start = dirty[i];
            let mut len = 1u64;
            while i + (len as usize) < dirty.len() && dirty[i + len as usize] == start + len {
                len += 1;
            }
            // Clip at track boundaries for the traxtent personality.
            let mut at = start;
            let mut remaining = len;
            while remaining > 0 {
                let chunk = match self.layout.personality() {
                    Personality::Traxtent if self.layout.block_trusted(at) => {
                        remaining.min(self.layout.traxtent_run(at))
                    }
                    _ => remaining.min(self.cluster_cap),
                };
                self.write_run(at, chunk);
                at += chunk;
                remaining -= chunk;
            }
            i += len as usize;
        }
        self.clock = self.clock.max(self.disk.idle_at());
        self.clock
    }

    /// Simulates a fresh boot for measurement: syncs, clears the buffer
    /// cache and drive state, resets the sequential detectors and the clock
    /// to zero.
    pub fn remount(&mut self) {
        self.sync();
        self.cache.clear();
        self.inflight.clear();
        self.disk.reset();
        self.clock = SimTime::ZERO;
        self.stats = FsStats::default();
        for inode in self.files.values_mut() {
            inode.last_read = None;
            inode.seq_count = 0;
            inode.accessed = false;
            inode.nonseq_seen = false;
        }
    }

    /// Convenience: elapsed simulated time of `f`, measured from a fresh
    /// remount to a final sync.
    pub fn timed<R>(&mut self, f: impl FnOnce(&mut Self) -> R) -> (R, SimDur) {
        self.remount();
        let r = f(self);
        let end = self.sync();
        (r, end - SimTime::ZERO)
    }
}

/// Updates an inode's sequential detector after an access to file block
/// `fb`.
fn update_seq(inode: &mut Inode, fb: u64) {
    match inode.last_read {
        Some(last) if fb == last + 1 => inode.seq_count += 1,
        Some(last) if fb == last => {}
        Some(_) => {
            inode.seq_count = 1;
            inode.nonseq_seen = true;
        }
        None => inode.seq_count = 1,
    }
    inode.last_read = Some(fb);
    inode.accessed = true;
}

/// Length of the contiguously allocated, uncached run starting at file
/// block `fb`, capped.
fn contiguous_run(inode: &Inode, fb: u64, cache: &BufferCache, cap: u64) -> u64 {
    let db0 = inode.blocks[fb as usize];
    let mut n = 0u64;
    while n < cap {
        let idx = (fb + n) as usize;
        if idx >= inode.blocks.len() {
            break;
        }
        let db = inode.blocks[idx];
        if db != db0 + n || cache.peek(db) {
            break;
        }
        n += 1;
    }
    n.max(1)
}

/// The first block of the dirty run containing `db`.
fn run_start(cache: &BufferCache, db: u64) -> u64 {
    let mut start = db;
    while start > 0 && cache.is_dirty(start - 1) {
        start -= 1;
    }
    start
}

/// Ground-truth track boundaries from the drive (stands in for a prior
/// extraction run; the dixtrac crate produces identical tables).
fn boundaries_of(disk: &Disk) -> traxtent::TrackBoundaries {
    let starts: Vec<u64> = disk
        .geometry()
        .iter_tracks()
        .filter(|(_, t)| t.lbn_count() > 0)
        .map(|(_, t)| t.first_lbn())
        .collect();
    traxtent::TrackBoundaries::new(starts, disk.geometry().capacity_lbns())
        .expect("drive geometry yields a valid table")
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_disk::models;

    fn fs(p: Personality) -> FileSystem {
        FileSystem::format(Disk::new(models::small_test_disk()), p)
    }

    const MB: u64 = 1 << 20;

    #[test]
    fn create_write_read_round_trip() {
        let mut f = fs(Personality::Unmodified);
        let id = f.create();
        f.write(id, 0, 4 * MB).unwrap();
        assert_eq!(f.size_of(id).unwrap(), 4 * MB);
        f.sync();
        f.read(id, 0, 4 * MB).unwrap();
        assert!(f.now() > SimTime::ZERO);
    }

    #[test]
    fn export_metrics_publishes_the_run() {
        let mut f = fs(Personality::Traxtent);
        let id = f.create();
        f.write(id, 0, 4 * MB).unwrap();
        f.sync();
        f.read(id, 0, 4 * MB).unwrap();
        f.read(id, 0, 4 * MB).unwrap();
        let reg = traxtent::obs::Registry::new();
        f.export_metrics(&reg);
        let snap = reg.snapshot();
        let stats = f.stats();
        assert_eq!(snap.get("ffs.disk.reads"), Some(stats.disk_reads));
        assert_eq!(snap.get("ffs.disk.writes"), Some(stats.disk_writes));
        let (hits, misses) = f.cache_stats();
        assert_eq!(snap.get("ffs.cache.hits"), Some(hits));
        assert!(hits > 0, "second read should hit the cache");
        assert_eq!(snap.get("ffs.cache.misses"), Some(misses));
        let a = f.layout().alloc_stats();
        assert!(a.sequential + a.track_aligned > 0);
        assert_eq!(snap.get("ffs.alloc.sequential"), Some(a.sequential));
        assert!(snap.get("ffs.excluded_ppm").unwrap() > 0);
    }

    #[test]
    fn read_beyond_eof_fails() {
        let mut f = fs(Personality::Unmodified);
        let id = f.create();
        f.write(id, 0, 1000).unwrap();
        assert!(matches!(
            f.read(id, 0, 1001),
            Err(FsError::BeyondEof { .. })
        ));
        assert!(f.read(id, 0, 1000).is_ok());
    }

    #[test]
    fn unknown_file_fails() {
        let mut f = fs(Personality::Unmodified);
        assert!(matches!(
            f.read(FileId(999), 0, 1),
            Err(FsError::NoSuchFile(_))
        ));
        assert!(matches!(f.delete(FileId(999)), Err(FsError::NoSuchFile(_))));
    }

    #[test]
    fn delete_releases_blocks() {
        let mut f = fs(Personality::Unmodified);
        let before = f.layout().free_blocks();
        let id = f.create();
        f.write(id, 0, 8 * MB).unwrap();
        f.sync();
        assert!(f.layout().free_blocks() < before);
        f.delete(id).unwrap();
        assert_eq!(f.layout().free_blocks(), before);
    }

    #[test]
    fn traxtent_files_avoid_excluded_blocks() {
        let mut f = fs(Personality::Traxtent);
        let id = f.create();
        f.write(id, 0, 8 * MB).unwrap();
        f.sync();
        let inode_blocks: Vec<u64> = {
            // Check every allocated block against the layout.
            (0..f.size_of(id).unwrap() / BYTES_PER_BLOCK).collect()
        };
        for fb in inode_blocks {
            f.read(id, fb * BYTES_PER_BLOCK, 1).unwrap();
        }
        // No panic from allocation invariants; excluded fraction intact.
        assert!(f.layout().excluded_fraction() > 0.0);
    }

    #[test]
    fn sequential_reads_use_clusters() {
        let mut f = fs(Personality::Unmodified);
        let id = f.create();
        f.write(id, 0, 16 * MB).unwrap();
        f.remount();
        f.read(id, 0, 16 * MB).unwrap();
        let s = f.stats();
        // 16 MB = 2048 blocks; with ramping read-ahead the request count
        // should be far below one per block.
        assert!(s.disk_reads < 600, "disk reads {}", s.disk_reads);
        assert_eq!(s.sectors_read, 2048 * BLOCK_SECTORS);
    }

    #[test]
    fn traxtent_reads_never_cross_tracks() {
        let mut f = fs(Personality::Traxtent);
        let id = f.create();
        f.write(id, 0, 16 * MB).unwrap();
        f.remount();
        f.read(id, 0, 16 * MB).unwrap();
        // No single read exceeds the largest track (200 sectors on the test
        // disk); the unmodified personality's 32-block clusters would be 512
        // sectors.
        assert!(f.stats().disk_reads > 0);
        assert!(
            f.stats().largest_read_sectors <= 200,
            "largest read {} sectors crosses a track",
            f.stats().largest_read_sectors
        );

        let mut u = fs(Personality::Unmodified);
        let id = u.create();
        u.write(id, 0, 16 * MB).unwrap();
        u.remount();
        u.read(id, 0, 16 * MB).unwrap();
        assert!(u.stats().largest_read_sectors > 200);
    }

    #[test]
    fn fast_start_fetches_aggressively_on_first_access() {
        let mut fast = fs(Personality::FastStart);
        let id = fast.create();
        fast.write(id, 0, MB).unwrap();
        fast.remount();
        fast.read(id, 0, 1).unwrap();
        // The demand fetch alone covers a full 32-block cluster.
        assert_eq!(fast.stats().largest_read_sectors, 32 * BLOCK_SECTORS);

        let mut unmod = fs(Personality::Unmodified);
        let id = unmod.create();
        unmod.write(id, 0, MB).unwrap();
        unmod.remount();
        unmod.read(id, 0, 1).unwrap();
        // Demand block + one read-ahead block (the pipelined prefetch for
        // the next run is also small during ramp-up).
        assert_eq!(unmod.stats().largest_read_sectors, 2 * BLOCK_SECTORS);
    }

    #[test]
    fn timed_measures_from_fresh_boot() {
        let mut f = fs(Personality::Unmodified);
        let id = f.create();
        f.write(id, 0, 4 * MB).unwrap();
        let (_, d1) = f.timed(|f| f.read(id, 0, 4 * MB).unwrap());
        let (_, d2) = f.timed(|f| f.read(id, 0, 4 * MB).unwrap());
        assert_eq!(d1, d2, "timed runs from fresh boots are reproducible");
        assert!(d1 > SimDur::ZERO);
    }

    #[test]
    fn no_space_is_reported() {
        let mut f = fs(Personality::Unmodified);
        let id = f.create();
        let total = f.layout().blocks() * BYTES_PER_BLOCK;
        assert!(matches!(
            f.write(id, 0, total + BYTES_PER_BLOCK),
            Err(FsError::NoSpace)
        ));
    }

    #[test]
    fn stats_mean_request_size() {
        let mut f = fs(Personality::Unmodified);
        let id = f.create();
        f.write(id, 0, 8 * MB).unwrap();
        f.remount();
        f.read(id, 0, 8 * MB).unwrap();
        assert!(f.stats().mean_request_bytes() > BYTES_PER_BLOCK as f64);
    }
}
