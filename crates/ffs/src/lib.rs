//! An FFS-like block file system over the simulated disk, with the three
//! personalities compared in §5.3 / Table 2 of the paper:
//!
//! * [`Personality::Unmodified`] — FreeBSD-style FFS: 8 KB blocks, 32 MB
//!   block groups, McVoy–Kleiman clustered allocation, history-based
//!   read-ahead ramping up to 32 blocks, cluster write-back.
//! * [`Personality::FastStart`] — the same, but the first access to a file
//!   prefetches a full 32-block cluster immediately (the paper's aggressive
//!   baseline).
//! * [`Personality::Traxtent`] — the traxtent-aware FFS: blocks spanning
//!   track boundaries are *excluded* from allocation, allocation prefers
//!   runs within one traxtent, and read-ahead fetches whole traxtents and
//!   never crosses a track boundary.
//!
//! The file system tracks real metadata (inodes, per-group bitmaps, buffer
//! cache) but not user data bytes: workloads only need faithful I/O timing,
//! which comes from the shared [`sim_disk::Disk`].
//!
//! For crash-consistency experiments the timing model can additionally
//! carry a byte-level on-media shadow
//! ([`FileSystem::enable_crash_shadow`]): metadata writes then encode the
//! [`image`] format, a power cut resolves to a concrete [`sim_disk::crash`]
//! image, and [`fsck()`](fsck::fsck) verifies or repairs it back to a
//! mountable state.

#![warn(missing_docs)]

pub mod cache;
pub mod fs;
pub mod fsck;
pub mod image;
pub mod layout;

pub use fs::{FileId, FileSystem, FsError, FsStats, ShadowError};
pub use fsck::{fsck, mount, FsckReport, MountError, RecoveredFile, RecoveredFs};
pub use layout::{Layout, Personality, BLOCK_SECTORS, BYTES_PER_BLOCK};
