//! The FFS on-media metadata format used by crash simulation and fsck.
//!
//! The timing model in [`crate::fs`] never materializes bytes; crash
//! consistency needs them. When a [`crate::fs::FileSystem`] runs with its
//! crash shadow enabled, every metadata write it issues carries a payload
//! in this format, so a power cut resolves to a concrete, decodable image
//! (see [`sim_disk::crash`]).
//!
//! Each block group owns one reserved *metadata block* (its first block,
//! [`meta_lbn`]), encoded sector by sector so that tearing is visible at
//! exactly the granularity the drive commits data:
//!
//! | sector | contents |
//! |---|---|
//! | 0 | summary: magic, group, generation, free count, bitmap checksum, self checksum |
//! | 1 | the group's allocation bitmap (one bit per block, LSB first) |
//! | 2..16 | 14 inode slots, each self-contained with magic + checksum |
//!
//! A torn metadata write leaves some sectors old and some new; every
//! sector is independently validatable (the summary checksums itself and
//! the bitmap, each inode sector checksums itself), which is what lets
//! [`crate::fsck`](mod@crate::fsck) decide per sector what survived.

use crate::layout::{BLOCKS_PER_GROUP, BLOCK_SECTORS};
use sim_disk::crash::{checksum, SectorImage, SECTOR_USIZE};
use std::fmt;

/// Sectors in one group's metadata block.
pub const META_SECTORS: u64 = BLOCK_SECTORS;

/// Inode slots per group (metadata block sectors minus summary + bitmap).
pub const INODE_SLOTS: usize = (META_SECTORS as usize) - 2;

/// Maximum extents one inode sector can hold:
/// `(512 − 32-byte header − 8-byte checksum) / 16 bytes per extent`.
pub const MAX_EXTENTS: usize = (SECTOR_USIZE - 32 - 8) / 16;

const MAGIC_SUMMARY: u64 = 0x5452_4158_4646_5331; // "TRAXFFS1"
const MAGIC_INODE: u64 = 0x5452_4158_494e_4f44; // "TRAXINOD"

/// Number of block groups an FFS of `blocks` blocks has on media. The
/// trailing partial group (if any) gets a metadata block too — its
/// bitmap covers the tail blocks even though no inodes live there.
pub fn ngroups(blocks: u64) -> u64 {
    blocks.div_ceil(BLOCKS_PER_GROUP)
}

/// Blocks covered by group `g`'s bitmap.
pub fn group_blocks(g: u64, blocks: u64) -> u64 {
    (blocks - g * BLOCKS_PER_GROUP).min(BLOCKS_PER_GROUP)
}

/// First sector of group `g`'s metadata block.
pub fn meta_lbn(g: u64) -> u64 {
    g * BLOCKS_PER_GROUP * BLOCK_SECTORS
}

/// Whether block `b` is a reserved metadata block (the first block of a
/// group). Reserved blocks are taken at shadow-format time
/// ([`crate::layout::Layout::reserve_group_metadata`]) so data never
/// lands on them.
pub fn is_meta_block(b: u64) -> bool {
    b.is_multiple_of(BLOCKS_PER_GROUP)
}

/// A decoded inode: the per-file metadata one slot sector holds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InodeRec {
    /// File id (never 0; 0 marks an empty slot).
    pub id: u64,
    /// File size in bytes.
    pub size_bytes: u64,
    /// Allocated blocks as `(start_block, len)` extents, in file order.
    pub extents: Vec<(u64, u64)>,
}

impl InodeRec {
    /// Total blocks across the extents.
    pub fn block_count(&self) -> u64 {
        self.extents.iter().map(|&(_, l)| l).sum()
    }

    /// The blocks in file order.
    pub fn blocks(&self) -> impl Iterator<Item = u64> + '_ {
        self.extents.iter().flat_map(|&(s, l)| s..s + l)
    }
}

/// Compresses a file's block list into extents.
pub fn extents_of(blocks: &[u64]) -> Vec<(u64, u64)> {
    let mut out: Vec<(u64, u64)> = Vec::new();
    for &b in blocks {
        match out.last_mut() {
            Some((s, l)) if *s + *l == b => *l += 1,
            _ => out.push((b, 1)),
        }
    }
    out
}

/// The decoded state of one inode slot sector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlotState {
    /// All-zeros: no inode here.
    Empty,
    /// A valid inode.
    Inode(InodeRec),
    /// The sector fails its magic/checksum/shape validation — torn or
    /// scribbled; the inode it held (if any) is lost.
    Bad,
}

/// The decoded summary sector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Summary {
    /// Group number as recorded on media.
    pub group: u64,
    /// Metadata generation (bumped on every metadata write of the group).
    pub generation: u64,
    /// Free blocks in the group as recorded on media.
    pub free_in_group: u64,
    /// Checksum the bitmap sector must match.
    pub bitmap_checksum: u64,
}

/// One group's metadata block as found on media: each component decoded
/// and validated independently, so a torn write degrades per sector.
#[derive(Debug, Clone)]
pub struct GroupDecode {
    /// The summary, if its sector validated.
    pub summary: Option<Summary>,
    /// Whether the bitmap sector matches the summary's checksum (always
    /// false when the summary itself is invalid).
    pub bitmap_valid: bool,
    /// The raw bitmap bits (meaningful only when `bitmap_valid`).
    pub bitmap: Vec<bool>,
    /// The inode slots.
    pub slots: Vec<SlotState>,
}

/// Errors from encoding metadata into the on-media format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// A file's block list needs more extents than one inode sector
    /// holds; its on-media inode would be lossy.
    TooManyExtents {
        /// The file id.
        id: u64,
        /// The extents the file actually has.
        have: usize,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::TooManyExtents { id, have } => write!(
                f,
                "file {id} spans {have} extents; an inode sector holds at most {MAX_EXTENTS}"
            ),
        }
    }
}

impl std::error::Error for EncodeError {}

fn put(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

fn get(buf: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(buf[off..off + 8].try_into().expect("8 bytes"))
}

/// Encodes one inode slot sector.
pub fn encode_inode(rec: &InodeRec) -> Result<[u8; SECTOR_USIZE], EncodeError> {
    if rec.extents.len() > MAX_EXTENTS {
        return Err(EncodeError::TooManyExtents {
            id: rec.id,
            have: rec.extents.len(),
        });
    }
    let mut s = [0u8; SECTOR_USIZE];
    put(&mut s, 0, MAGIC_INODE);
    put(&mut s, 8, rec.id);
    put(&mut s, 16, rec.size_bytes);
    put(&mut s, 24, rec.extents.len() as u64);
    for (i, &(start, len)) in rec.extents.iter().enumerate() {
        put(&mut s, 32 + 16 * i, start);
        put(&mut s, 40 + 16 * i, len);
    }
    let ck = checksum(&s[..SECTOR_USIZE - 8]);
    put(&mut s, SECTOR_USIZE - 8, ck);
    Ok(s)
}

/// Decodes one inode slot sector.
pub fn decode_slot(s: &[u8; SECTOR_USIZE]) -> SlotState {
    if s.iter().all(|&b| b == 0) {
        return SlotState::Empty;
    }
    if get(s, 0) != MAGIC_INODE || get(s, SECTOR_USIZE - 8) != checksum(&s[..SECTOR_USIZE - 8]) {
        return SlotState::Bad;
    }
    let id = get(s, 8);
    let n = get(s, 24) as usize;
    if id == 0 || n > MAX_EXTENTS {
        return SlotState::Bad;
    }
    let mut extents = Vec::with_capacity(n);
    for i in 0..n {
        let start = get(s, 32 + 16 * i);
        let len = get(s, 40 + 16 * i);
        if len == 0 {
            return SlotState::Bad;
        }
        extents.push((start, len));
    }
    SlotState::Inode(InodeRec {
        id,
        size_bytes: get(s, 16),
        extents,
    })
}

/// Encodes the bitmap sector for `alloc` (true → allocated).
pub fn encode_bitmap(alloc: &[bool]) -> [u8; SECTOR_USIZE] {
    assert!(alloc.len() as u64 <= BLOCKS_PER_GROUP, "bitmap too wide");
    let mut s = [0u8; SECTOR_USIZE];
    for (b, &a) in alloc.iter().enumerate() {
        if a {
            s[b / 8] |= 1 << (b % 8);
        }
    }
    s
}

/// Decodes the bitmap sector into `nblocks` bools.
pub fn decode_bitmap(s: &[u8; SECTOR_USIZE], nblocks: u64) -> Vec<bool> {
    (0..nblocks as usize)
        .map(|b| s[b / 8] & (1 << (b % 8)) != 0)
        .collect()
}

/// Encodes a whole metadata block: summary + bitmap + inode slots, as
/// the `META_SECTORS * 512` byte payload of one metadata write.
/// `alloc[b]` covers the group's blocks (true → allocated); `slots`
/// must have exactly [`INODE_SLOTS`] entries.
pub fn encode_group(
    group: u64,
    generation: u64,
    alloc: &[bool],
    slots: &[Option<InodeRec>],
) -> Result<Vec<u8>, EncodeError> {
    assert_eq!(slots.len(), INODE_SLOTS, "one entry per slot");
    let bitmap = encode_bitmap(alloc);
    let free = alloc.iter().filter(|&&a| !a).count() as u64;
    let mut summary = [0u8; SECTOR_USIZE];
    put(&mut summary, 0, MAGIC_SUMMARY);
    put(&mut summary, 8, group);
    put(&mut summary, 16, generation);
    put(&mut summary, 24, free);
    put(&mut summary, 32, checksum(&bitmap));
    let self_ck = checksum(&summary[..40]);
    put(&mut summary, 40, self_ck);

    let mut out = Vec::with_capacity(META_SECTORS as usize * SECTOR_USIZE);
    out.extend_from_slice(&summary);
    out.extend_from_slice(&bitmap);
    for slot in slots {
        match slot {
            Some(rec) => out.extend_from_slice(&encode_inode(rec)?),
            None => out.extend_from_slice(&[0u8; SECTOR_USIZE]),
        }
    }
    Ok(out)
}

/// Decodes group `g`'s metadata block out of `image` (an FFS of
/// `blocks` blocks), validating every sector independently.
pub fn decode_group(image: &SectorImage, g: u64, blocks: u64) -> GroupDecode {
    let base = meta_lbn(g);
    let s0 = image.read(base);
    let summary =
        (get(&s0, 0) == MAGIC_SUMMARY && get(&s0, 8) == g && get(&s0, 40) == checksum(&s0[..40]))
            .then(|| Summary {
                group: get(&s0, 8),
                generation: get(&s0, 16),
                free_in_group: get(&s0, 24),
                bitmap_checksum: get(&s0, 32),
            });
    let s1 = image.read(base + 1);
    let bitmap_valid = summary.is_some_and(|s| checksum(&s1) == s.bitmap_checksum);
    let bitmap = decode_bitmap(&s1, group_blocks(g, blocks));
    let slots = (0..INODE_SLOTS as u64)
        .map(|i| decode_slot(&image.read(base + 2 + i)))
        .collect();
    GroupDecode {
        summary,
        bitmap_valid,
        bitmap,
        slots,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inode_round_trips() {
        let rec = InodeRec {
            id: 7,
            size_bytes: 123_456,
            extents: vec![(10, 5), (100, 1), (4000, 96)],
        };
        let s = encode_inode(&rec).unwrap();
        assert_eq!(decode_slot(&s), SlotState::Inode(rec));
    }

    #[test]
    fn torn_inode_sector_is_bad_not_garbage() {
        let rec = InodeRec {
            id: 9,
            size_bytes: 1,
            extents: vec![(1, 1)],
        };
        let mut s = encode_inode(&rec).unwrap();
        s[40] ^= 0xff; // flip a bit in the extent list
        assert_eq!(decode_slot(&s), SlotState::Bad);
        assert_eq!(decode_slot(&[0u8; SECTOR_USIZE]), SlotState::Empty);
    }

    #[test]
    fn extent_overflow_is_typed() {
        let rec = InodeRec {
            id: 3,
            size_bytes: 0,
            extents: (0..(MAX_EXTENTS as u64 + 1)).map(|i| (i * 2, 1)).collect(),
        };
        assert!(matches!(
            encode_inode(&rec),
            Err(EncodeError::TooManyExtents { id: 3, .. })
        ));
    }

    #[test]
    fn group_round_trips_through_an_image() {
        let alloc: Vec<bool> = (0..BLOCKS_PER_GROUP).map(|b| b % 3 == 0).collect();
        let mut slots: Vec<Option<InodeRec>> = vec![None; INODE_SLOTS];
        slots[2] = Some(InodeRec {
            id: 11,
            size_bytes: 8192,
            extents: vec![(3, 2)],
        });
        let bytes = encode_group(5, 42, &alloc, &slots).unwrap();
        let mut image = SectorImage::new();
        for (i, chunk) in bytes.chunks(SECTOR_USIZE).enumerate() {
            let mut s = [0u8; SECTOR_USIZE];
            s.copy_from_slice(chunk);
            image.write(meta_lbn(5) + i as u64, &s);
        }
        let blocks = 6 * BLOCKS_PER_GROUP;
        let d = decode_group(&image, 5, blocks);
        let sum = d.summary.expect("summary decodes");
        assert_eq!(sum.group, 5);
        assert_eq!(sum.generation, 42);
        assert!(d.bitmap_valid);
        assert_eq!(d.bitmap, alloc);
        assert!(matches!(&d.slots[2], SlotState::Inode(r) if r.id == 11));
        assert!(matches!(&d.slots[0], SlotState::Empty));

        // Tear the bitmap sector: the summary survives but the bitmap is
        // flagged invalid.
        let mut torn = [0u8; SECTOR_USIZE];
        torn[0] = 1;
        image.write(meta_lbn(5) + 1, &torn);
        let d = decode_group(&image, 5, blocks);
        assert!(d.summary.is_some());
        assert!(!d.bitmap_valid);
    }

    #[test]
    fn extents_compress_block_lists() {
        assert_eq!(extents_of(&[]), vec![]);
        assert_eq!(
            extents_of(&[5, 6, 7, 9, 10, 20]),
            vec![(5, 3), (9, 2), (20, 1)]
        );
    }

    #[test]
    fn trailing_group_geometry() {
        let blocks = BLOCKS_PER_GROUP + 1154;
        assert_eq!(ngroups(blocks), 2);
        assert_eq!(group_blocks(0, blocks), BLOCKS_PER_GROUP);
        assert_eq!(group_blocks(1, blocks), 1154);
        assert!(is_meta_block(0));
        assert!(is_meta_block(BLOCKS_PER_GROUP));
        assert!(!is_meta_block(1));
    }
}
