//! fsck: verify and repair a crashed FFS image back to a mountable state.
//!
//! A power cut leaves the [`crate::image`] metadata in whatever mix of
//! old and new sectors the head had committed (see [`sim_disk::crash`]).
//! The damage fsck must handle is exactly what real FFS fsck handles:
//!
//! * **Torn metadata blocks** — a summary, bitmap, or inode sector from
//!   mid-write; every sector self-validates, so tearing is detected per
//!   sector, never silently decoded.
//! * **Stale bitmaps** — blocks allocated (or freed) after the group's
//!   last metadata write: *leaked* blocks (marked allocated, referenced
//!   by no inode) and *lost* blocks (referenced by an inode, marked
//!   free).
//! * **Cross-group skew** — an inode checkpointed in group A referencing
//!   blocks in group B whose bitmap is older (or newer) than A's.
//! * **Conflicting references** — double-referenced, out-of-range,
//!   excluded, or metadata-reserved blocks in an extent list.
//!
//! The repair policy is references-win: valid inodes are the source of
//! truth and bitmaps are rebuilt from them (conflicting references
//! truncate the later file, in deterministic group/slot order). The
//! *mountable-image invariant* — [`check`] returns `Ok` — then holds:
//! every metadata sector decodes, every reference is exclusive and in
//! range, and every bitmap and free count agrees exactly with the
//! reference map. [`fsck`] is idempotent: a second pass on its output
//! repairs nothing and rewrites nothing.

use crate::image::{
    self, decode_group, group_blocks, is_meta_block, meta_lbn, ngroups, GroupDecode, InodeRec,
    SlotState, INODE_SLOTS,
};
use crate::layout::{Layout, BLOCKS_PER_GROUP, BYTES_PER_BLOCK};
use sim_disk::crash::{SectorImage, SECTOR_USIZE};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// What [`fsck`] found and repaired. All-zero counters (see
/// [`clean`](FsckReport::clean)) mean the image already satisfied the
/// mountable invariant and was not modified.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FsckReport {
    /// Groups whose summary or bitmap sector was torn; their bitmaps
    /// were rebuilt from the reference map.
    pub bitmaps_rebuilt: u64,
    /// Inode sectors that failed validation; their files are lost.
    pub bad_inode_sectors: u64,
    /// Inode slots dropped because an earlier slot already holds the
    /// same file id.
    pub duplicate_inodes: u64,
    /// Files truncated at a conflicting reference (double-referenced,
    /// out-of-range, excluded, or reserved block).
    pub truncated_files: u64,
    /// Blocks that were referenced by more than one inode (kept by the
    /// first referencer, truncating the later one).
    pub double_refs: u64,
    /// Blocks marked allocated in a valid bitmap but referenced by no
    /// inode; freed.
    pub leaked_blocks: u64,
    /// Blocks referenced by an inode but marked free in a valid bitmap;
    /// marked allocated.
    pub lost_blocks: u64,
    /// Valid summaries whose free count disagreed with the (otherwise
    /// correct) bitmap.
    pub free_counts_fixed: u64,
    /// Files that survived (after any truncation).
    pub files: u64,
}

impl FsckReport {
    /// Whether the image needed no repair at all.
    pub fn clean(&self) -> bool {
        self.bitmaps_rebuilt == 0
            && self.bad_inode_sectors == 0
            && self.duplicate_inodes == 0
            && self.truncated_files == 0
            && self.double_refs == 0
            && self.leaked_blocks == 0
            && self.lost_blocks == 0
            && self.free_counts_fixed == 0
    }
}

/// Why an image is not mountable (the invariant [`check`] enforces and
/// [`fsck`] restores).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MountError {
    /// Group `group`'s summary sector does not validate.
    BadSummary {
        /// The group.
        group: u64,
    },
    /// Group `group`'s bitmap sector does not match its summary checksum.
    BadBitmap {
        /// The group.
        group: u64,
    },
    /// An inode sector fails validation.
    BadInode {
        /// The group.
        group: u64,
        /// The slot within the group.
        slot: u64,
    },
    /// Two inode slots carry the same file id.
    DuplicateFileId {
        /// The duplicated id.
        id: u64,
    },
    /// File `id` references a block it must not (out of range, excluded,
    /// metadata-reserved, or already referenced by another file).
    BadReference {
        /// The referencing file.
        id: u64,
        /// The offending block.
        block: u64,
    },
    /// Group `group`'s bitmap disagrees with the reference map at
    /// `block`.
    BitmapMismatch {
        /// The group.
        group: u64,
        /// The first disagreeing block.
        block: u64,
    },
    /// Group `group`'s recorded free count disagrees with its bitmap.
    FreeCountMismatch {
        /// The group.
        group: u64,
    },
}

impl fmt::Display for MountError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MountError::BadSummary { group } => write!(f, "group {group}: summary sector torn"),
            MountError::BadBitmap { group } => write!(f, "group {group}: bitmap sector torn"),
            MountError::BadInode { group, slot } => {
                write!(f, "group {group} slot {slot}: inode sector torn")
            }
            MountError::DuplicateFileId { id } => write!(f, "file id {id} appears twice"),
            MountError::BadReference { id, block } => {
                write!(f, "file {id} references unusable block {block}")
            }
            MountError::BitmapMismatch { group, block } => {
                write!(f, "group {group}: bitmap wrong at block {block}")
            }
            MountError::FreeCountMismatch { group } => {
                write!(f, "group {group}: free count disagrees with bitmap")
            }
        }
    }
}

impl Error for MountError {}

/// A file as recovered from a mountable image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveredFile {
    /// The file's raw id.
    pub id: u64,
    /// Recovered size in bytes.
    pub size_bytes: u64,
    /// Recovered extents, in file order.
    pub extents: Vec<(u64, u64)>,
}

impl RecoveredFile {
    /// The file's blocks in file order.
    pub fn blocks(&self) -> impl Iterator<Item = u64> + '_ {
        self.extents.iter().flat_map(|&(s, l)| s..s + l)
    }
}

/// The result of mounting a recovered image.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveredFs {
    /// Recovered files by raw id.
    pub files: BTreeMap<u64, RecoveredFile>,
}

/// One surviving inode during repair.
struct LiveInode {
    group: u64,
    slot: usize,
    rec: InodeRec,
    truncated: bool,
}

/// Whether block `b` may ever hold file data in a layout `layout`.
/// Metadata-reserved and excluded blocks may not; neither may anything
/// past the end of the file system.
fn data_usable(layout: &Layout, b: u64) -> bool {
    b < layout.blocks() && !is_meta_block(b) && !layout.is_excluded(b)
}

/// Decodes all groups, validates inodes, and resolves references in
/// deterministic (group, slot) order. Returns the surviving inodes, the
/// reference map, and the per-group decodes, updating `report` counters
/// and `dirty` flags for groups whose metadata must be rewritten.
fn resolve(
    image: &SectorImage,
    layout: &Layout,
    report: &mut FsckReport,
    dirty: &mut [bool],
) -> (Vec<LiveInode>, Vec<bool>, Vec<GroupDecode>) {
    let blocks = layout.blocks();
    let groups = ngroups(blocks);
    let decodes: Vec<GroupDecode> = (0..groups)
        .map(|g| decode_group(image, g, blocks))
        .collect();

    let mut live: Vec<LiveInode> = Vec::new();
    let mut seen = BTreeMap::new();
    for (g, d) in decodes.iter().enumerate() {
        for (si, slot) in d.slots.iter().enumerate() {
            match slot {
                SlotState::Empty => {}
                SlotState::Bad => {
                    report.bad_inode_sectors += 1;
                    dirty[g] = true;
                }
                SlotState::Inode(rec) => {
                    if seen.insert(rec.id, ()).is_some() {
                        report.duplicate_inodes += 1;
                        dirty[g] = true;
                        continue;
                    }
                    live.push(LiveInode {
                        group: g as u64,
                        slot: si,
                        rec: rec.clone(),
                        truncated: false,
                    });
                }
            }
        }
    }

    // References win: walk every surviving inode's blocks in file order,
    // truncating at the first reference the file may not hold.
    let mut claimed = vec![false; blocks as usize];
    for f in &mut live {
        let mut kept: Vec<u64> = Vec::new();
        for b in f.rec.blocks() {
            if !data_usable(layout, b) {
                f.truncated = true;
                break;
            }
            if claimed[b as usize] {
                report.double_refs += 1;
                f.truncated = true;
                break;
            }
            claimed[b as usize] = true;
            kept.push(b);
        }
        if f.truncated {
            report.truncated_files += 1;
            dirty[f.group as usize] = true;
            f.rec.size_bytes = f.rec.size_bytes.min(kept.len() as u64 * BYTES_PER_BLOCK);
            f.rec.extents = image::extents_of(&kept);
        }
    }
    report.files = live.len() as u64;
    (live, claimed, decodes)
}

/// The bitmap a group must carry once references win: excluded blocks,
/// metadata-reserved blocks, and every block claimed by a surviving
/// inode.
fn expected_bitmap(layout: &Layout, claimed: &[bool], g: u64) -> Vec<bool> {
    let base = g * BLOCKS_PER_GROUP;
    (0..group_blocks(g, layout.blocks()))
        .map(|i| {
            let b = base + i;
            !data_usable(layout, b) || claimed[b as usize]
        })
        .collect()
}

/// Verifies and repairs `image` in place, returning what was done.
/// `layout` supplies the geometry (block count and excluded set — both
/// crash-invariant); the live post-workload layout or a freshly
/// formatted twin both work.
///
/// After `fsck` returns, [`check`] passes and a second `fsck` reports
/// [`FsckReport::clean`] and leaves the image byte-identical. Data
/// sectors are never touched.
pub fn fsck(image: &mut SectorImage, layout: &Layout) -> FsckReport {
    let blocks = layout.blocks();
    let groups = ngroups(blocks) as usize;
    let mut report = FsckReport::default();
    let mut dirty = vec![false; groups];
    let (live, claimed, decodes) = resolve(image, layout, &mut report, &mut dirty);

    for (g, d) in decodes.iter().enumerate() {
        let expected = expected_bitmap(layout, &claimed, g as u64);
        let expected_free = expected.iter().filter(|&&a| !a).count() as u64;
        match (&d.summary, d.bitmap_valid) {
            (Some(s), true) => {
                let mut mismatch = false;
                for (i, (&on, &want)) in d.bitmap.iter().zip(&expected).enumerate() {
                    if on != want {
                        mismatch = true;
                        let b = g as u64 * BLOCKS_PER_GROUP + i as u64;
                        if on {
                            report.leaked_blocks += 1;
                        } else {
                            report.lost_blocks += 1;
                            debug_assert!(claimed[b as usize], "lost block must be referenced");
                        }
                    }
                }
                if mismatch {
                    dirty[g] = true;
                } else if s.free_in_group != expected_free {
                    report.free_counts_fixed += 1;
                    dirty[g] = true;
                }
            }
            _ => {
                report.bitmaps_rebuilt += 1;
                dirty[g] = true;
            }
        }
    }

    for (g, was_dirty) in dirty.iter().enumerate() {
        if !was_dirty {
            continue;
        }
        let generation = decodes[g].summary.map_or(0, |s| s.generation) + 1;
        let expected = expected_bitmap(layout, &claimed, g as u64);
        let mut slots: Vec<Option<InodeRec>> = vec![None; INODE_SLOTS];
        for f in &live {
            if f.group == g as u64 {
                slots[f.slot] = Some(f.rec.clone());
            }
        }
        let bytes = image::encode_group(g as u64, generation, &expected, &slots)
            .expect("recovered extents fit: they came from valid inode sectors");
        let base = meta_lbn(g as u64);
        for (i, chunk) in bytes.chunks(SECTOR_USIZE).enumerate() {
            let mut s = [0u8; SECTOR_USIZE];
            s.copy_from_slice(chunk);
            image.write(base + i as u64, &s);
        }
    }
    report
}

/// The mountable-image invariant: every metadata sector decodes, file
/// ids are unique, every reference is exclusive and usable, and every
/// bitmap and free count agrees exactly with the reference map. Returns
/// the first violation found (in deterministic group/slot order).
pub fn check(image: &SectorImage, layout: &Layout) -> Result<(), MountError> {
    let blocks = layout.blocks();
    let groups = ngroups(blocks);
    let decodes: Vec<GroupDecode> = (0..groups)
        .map(|g| decode_group(image, g, blocks))
        .collect();

    let mut claimed = vec![false; blocks as usize];
    let mut seen = BTreeMap::new();
    for (g, d) in decodes.iter().enumerate() {
        let Some(_) = d.summary else {
            return Err(MountError::BadSummary { group: g as u64 });
        };
        if !d.bitmap_valid {
            return Err(MountError::BadBitmap { group: g as u64 });
        }
        for (si, slot) in d.slots.iter().enumerate() {
            match slot {
                SlotState::Empty => {}
                SlotState::Bad => {
                    return Err(MountError::BadInode {
                        group: g as u64,
                        slot: si as u64,
                    })
                }
                SlotState::Inode(rec) => {
                    if seen.insert(rec.id, ()).is_some() {
                        return Err(MountError::DuplicateFileId { id: rec.id });
                    }
                    for b in rec.blocks() {
                        if !data_usable(layout, b) || claimed[b as usize] {
                            return Err(MountError::BadReference {
                                id: rec.id,
                                block: b,
                            });
                        }
                        claimed[b as usize] = true;
                    }
                }
            }
        }
    }
    for (g, d) in decodes.iter().enumerate() {
        let expected = expected_bitmap(layout, &claimed, g as u64);
        for (i, (&on, &want)) in d.bitmap.iter().zip(&expected).enumerate() {
            if on != want {
                return Err(MountError::BitmapMismatch {
                    group: g as u64,
                    block: g as u64 * BLOCKS_PER_GROUP + i as u64,
                });
            }
        }
        let free = expected.iter().filter(|&&a| !a).count() as u64;
        if d.summary.expect("validated above").free_in_group != free {
            return Err(MountError::FreeCountMismatch { group: g as u64 });
        }
    }
    Ok(())
}

/// Mounts a mountable image, returning its files. Run [`fsck`] first
/// after a crash; mounting a damaged image fails with the violation.
pub fn mount(image: &SectorImage, layout: &Layout) -> Result<RecoveredFs, MountError> {
    check(image, layout)?;
    let blocks = layout.blocks();
    let mut fs = RecoveredFs::default();
    for g in 0..ngroups(blocks) {
        for slot in decode_group(image, g, blocks).slots {
            if let SlotState::Inode(rec) = slot {
                fs.files.insert(
                    rec.id,
                    RecoveredFile {
                        id: rec.id,
                        size_bytes: rec.size_bytes,
                        extents: rec.extents,
                    },
                );
            }
        }
    }
    Ok(fs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::Personality;
    use traxtent::TrackBoundaries;

    /// 400 tracks × 200 sectors = 5000 blocks: one full group plus a
    /// 904-block trailing partial group.
    fn layout() -> Layout {
        let mut l = Layout::format(
            Personality::Unmodified,
            TrackBoundaries::uniform(400, 200),
            400 * 200,
        );
        l.reserve_group_metadata();
        l
    }

    /// A clean image: both groups encoded with `files` claiming blocks.
    fn clean_image(layout: &Layout, files: &[InodeRec]) -> SectorImage {
        let blocks = layout.blocks();
        let mut claimed = vec![false; blocks as usize];
        for f in files {
            for b in f.blocks().filter(|&b| b < blocks) {
                claimed[b as usize] = true;
            }
        }
        let mut image = SectorImage::new();
        for g in 0..ngroups(blocks) {
            let bitmap = expected_bitmap(layout, &claimed, g);
            // All inodes live in group 0's slots; the trailing partial
            // group carries only its bitmap.
            let mut slots: Vec<Option<InodeRec>> = vec![None; INODE_SLOTS];
            for (i, f) in files.iter().enumerate() {
                if g == 0 {
                    slots[i] = Some(f.clone());
                }
            }
            let bytes = image::encode_group(g, 1, &bitmap, &slots).unwrap();
            for (i, chunk) in bytes.chunks(SECTOR_USIZE).enumerate() {
                let mut s = [0u8; SECTOR_USIZE];
                s.copy_from_slice(chunk);
                image.write(meta_lbn(g) + i as u64, &s);
            }
        }
        image
    }

    fn file(id: u64, extents: Vec<(u64, u64)>) -> InodeRec {
        let nb: u64 = extents.iter().map(|&(_, l)| l).sum();
        InodeRec {
            id,
            size_bytes: nb * BYTES_PER_BLOCK,
            extents,
        }
    }

    #[test]
    fn clean_image_mounts_and_fsck_is_a_noop() {
        let l = layout();
        let mut img = clean_image(
            &l,
            &[file(1, vec![(10, 4)]), file(2, vec![(20, 2), (30, 1)])],
        );
        check(&img, &l).unwrap();
        let before = img.clone();
        let report = fsck(&mut img, &l);
        assert!(report.clean(), "{report:?}");
        assert_eq!(report.files, 2);
        assert_eq!(img, before, "clean fsck must not rewrite anything");
        let fs = mount(&img, &l).unwrap();
        assert_eq!(fs.files.len(), 2);
        assert_eq!(
            fs.files[&1].blocks().collect::<Vec<_>>(),
            vec![10, 11, 12, 13]
        );
    }

    #[test]
    fn torn_bitmap_is_rebuilt_from_references() {
        let l = layout();
        let mut img = clean_image(&l, &[file(1, vec![(10, 4)])]);
        // Tear group 0's bitmap sector mid-write.
        let mut torn = img.read(meta_lbn(0) + 1);
        torn[0] ^= 0xaa;
        img.write(meta_lbn(0) + 1, &torn);
        assert_eq!(check(&img, &l), Err(MountError::BadBitmap { group: 0 }));

        let report = fsck(&mut img, &l);
        assert_eq!(report.bitmaps_rebuilt, 1);
        assert_eq!(report.files, 1);
        check(&img, &l).unwrap();
        let again = fsck(&mut img.clone(), &l);
        assert!(again.clean());
    }

    #[test]
    fn leaked_and_lost_blocks_are_reconciled() {
        let l = layout();
        let f = file(1, vec![(10, 4)]);
        let mut img = clean_image(&l, std::slice::from_ref(&f));
        // Rewrite group 0's bitmap claiming block 50 (leaked) and freeing
        // block 12 (lost: file 1 references it).
        let blocks = l.blocks();
        let mut claimed = vec![false; blocks as usize];
        for b in f.blocks() {
            claimed[b as usize] = true;
        }
        let mut bitmap = expected_bitmap(&l, &claimed, 0);
        bitmap[50] = true;
        bitmap[12] = false;
        let bytes = image::encode_group(0, 2, &bitmap, &{
            let mut s: Vec<Option<InodeRec>> = vec![None; INODE_SLOTS];
            s[0] = Some(f.clone());
            s
        })
        .unwrap();
        for (i, chunk) in bytes.chunks(SECTOR_USIZE).enumerate() {
            let mut s = [0u8; SECTOR_USIZE];
            s.copy_from_slice(chunk);
            img.write(meta_lbn(0) + i as u64, &s);
        }
        assert!(matches!(
            check(&img, &l),
            Err(MountError::BitmapMismatch { group: 0, .. })
        ));

        let report = fsck(&mut img, &l);
        assert_eq!(report.leaked_blocks, 1);
        assert_eq!(report.lost_blocks, 1);
        check(&img, &l).unwrap();
        let fs = mount(&img, &l).unwrap();
        assert_eq!(fs.files[&1].blocks().count(), 4);
    }

    #[test]
    fn double_referenced_block_truncates_the_later_file() {
        let l = layout();
        // File 2's second block collides with file 1's extent.
        let mut img = clean_image(
            &l,
            &[file(1, vec![(10, 4)]), file(2, vec![(20, 1), (11, 1)])],
        );
        assert!(matches!(
            check(&img, &l),
            Err(MountError::BadReference { id: 2, block: 11 })
        ));
        let report = fsck(&mut img, &l);
        assert_eq!(report.double_refs, 1);
        assert_eq!(report.truncated_files, 1);
        check(&img, &l).unwrap();
        let fs = mount(&img, &l).unwrap();
        assert_eq!(
            fs.files[&1].blocks().count(),
            4,
            "first referencer keeps the block"
        );
        assert_eq!(fs.files[&2].blocks().collect::<Vec<_>>(), vec![20]);
        assert_eq!(fs.files[&2].size_bytes, BYTES_PER_BLOCK);
    }

    #[test]
    fn torn_inode_sector_loses_the_file_and_frees_its_blocks() {
        let l = layout();
        let mut img = clean_image(&l, &[file(1, vec![(10, 4)]), file(2, vec![(20, 2)])]);
        // Tear file 2's inode sector (slot 1 → sector 3 of the block).
        let mut torn = img.read(meta_lbn(0) + 3);
        torn[100] ^= 0x01;
        img.write(meta_lbn(0) + 3, &torn);
        assert_eq!(
            check(&img, &l),
            Err(MountError::BadInode { group: 0, slot: 1 })
        );

        let report = fsck(&mut img, &l);
        assert_eq!(report.bad_inode_sectors, 1);
        assert_eq!(report.files, 1);
        // File 2's blocks were marked allocated in the (valid) bitmap but
        // are no longer referenced: leaked, and freed.
        assert_eq!(report.leaked_blocks, 2);
        check(&img, &l).unwrap();
        let fs = mount(&img, &l).unwrap();
        assert!(!fs.files.contains_key(&2));
    }

    #[test]
    fn out_of_range_reference_truncates() {
        let l = layout();
        let beyond = l.blocks() + 5;
        let mut img = clean_image(&l, &[file(1, vec![(10, 2), (beyond, 1)])]);
        let report = fsck(&mut img, &l);
        assert_eq!(report.truncated_files, 1);
        check(&img, &l).unwrap();
        let fs = mount(&img, &l).unwrap();
        assert_eq!(fs.files[&1].blocks().collect::<Vec<_>>(), vec![10, 11]);
    }
}
