//! On-disk layout: block groups, free-block bitmaps, excluded blocks, and
//! the allocation policies of the three FFS personalities.

use traxtent::{ConfidentBoundaries, TrackBoundaries};

/// Sectors per file-system block (8 KB blocks over 512-byte sectors).
pub const BLOCK_SECTORS: u64 = 16;

/// Bytes per file-system block.
pub const BYTES_PER_BLOCK: u64 = BLOCK_SECTORS * 512;

/// Blocks per block group (32 MB groups, as in the paper's experiments).
pub const BLOCKS_PER_GROUP: u64 = 4096;

/// Which FFS variant is running.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Personality {
    /// Stock FreeBSD FFS behaviour.
    Unmodified,
    /// Stock allocation, but aggressive 32-block prefetch on first access.
    FastStart,
    /// Traxtent-aware allocation and access.
    Traxtent,
}

/// Where [`Layout::alloc_next`] placements came from.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Placements on the preferred next-sequential block.
    pub sequential: u64,
    /// Placements into a whole-traxtent run (track-aligned by
    /// construction; traxtent personality only).
    pub track_aligned: u64,
    /// Placements by the closest-free-run fallback, which ignores track
    /// boundaries.
    pub fallback: u64,
}

/// The formatted layout: free-block state for every group plus the
/// traxtent structures.
#[derive(Debug, Clone)]
pub struct Layout {
    personality: Personality,
    boundaries: TrackBoundaries,
    /// Total file-system blocks.
    blocks: u64,
    /// free[b] == true → block b is free.
    free: Vec<bool>,
    /// Blocks permanently excluded because they span a track boundary
    /// (traxtent personality only).
    excluded: Vec<bool>,
    free_count: u64,
    alloc_stats: AllocStats,
    /// Per-track trust mask from a noisy extraction; empty means every
    /// track is trusted. Untrusted tracks get no boundary exclusions and
    /// no track-aligned placement — the file system treats them exactly
    /// like the unmodified personality would (untracked allocation).
    trusted: Vec<bool>,
}

impl Layout {
    /// Formats a disk of `capacity_lbns` sectors whose track boundaries are
    /// `boundaries`. For the traxtent personality, every block spanning a
    /// track boundary is marked excluded (treated as allocated forever), as
    /// in §4.2.2.
    ///
    /// # Panics
    ///
    /// Panics if the disk is smaller than one block group.
    pub fn format(
        personality: Personality,
        boundaries: TrackBoundaries,
        capacity_lbns: u64,
    ) -> Self {
        Self::build(personality, boundaries, capacity_lbns, Vec::new())
    }

    /// Like [`format`](Self::format), but from a noisy extraction: tracks
    /// whose confidence falls below `threshold` are untrusted. The traxtent
    /// personality degrades to untracked (unmodified-style) behaviour on
    /// them — no blocks are excluded there, no track-aligned placement
    /// targets them, and transfers touching them are not clipped at their
    /// (possibly wrong) boundaries.
    ///
    /// # Panics
    ///
    /// Panics if the disk is smaller than one block group.
    pub fn format_confident(
        personality: Personality,
        boundaries: &ConfidentBoundaries,
        threshold: f64,
        capacity_lbns: u64,
    ) -> Self {
        let trusted: Vec<bool> = (0..boundaries.table().num_tracks())
            .map(|i| boundaries.is_confident(i, threshold))
            .collect();
        Self::build(
            personality,
            boundaries.table().clone(),
            capacity_lbns,
            trusted,
        )
    }

    fn build(
        personality: Personality,
        boundaries: TrackBoundaries,
        capacity_lbns: u64,
        trusted: Vec<bool>,
    ) -> Self {
        let blocks = capacity_lbns / BLOCK_SECTORS;
        assert!(
            blocks >= BLOCKS_PER_GROUP,
            "disk too small for one block group"
        );
        let track_trusted = |lbn: u64| trusted.is_empty() || trusted[boundaries.track_index(lbn)];
        let mut excluded = vec![false; blocks as usize];
        let mut free = vec![true; blocks as usize];
        let mut free_count = blocks;
        if personality == Personality::Traxtent {
            for b in 0..blocks {
                let first = b * BLOCK_SECTORS;
                let last = first + BLOCK_SECTORS - 1;
                let (_, track_end) = boundaries.track_bounds(first);
                if last >= track_end && track_trusted(first) {
                    excluded[b as usize] = true;
                    free[b as usize] = false;
                    free_count -= 1;
                }
            }
        }
        Layout {
            personality,
            boundaries,
            blocks,
            free,
            excluded,
            free_count,
            alloc_stats: AllocStats::default(),
            trusted,
        }
    }

    /// Whether the track holding block `b` has trustworthy boundaries
    /// (always true for a layout formatted without confidence data).
    pub fn block_trusted(&self, b: u64) -> bool {
        self.trusted.is_empty() || self.trusted[self.boundaries.track_index(self.block_to_lbn(b))]
    }

    /// Fraction of tracks whose boundaries are trusted (1.0 without
    /// confidence data).
    pub fn trusted_fraction(&self) -> f64 {
        if self.trusted.is_empty() {
            return 1.0;
        }
        self.trusted.iter().filter(|&&t| t).count() as f64 / self.trusted.len() as f64
    }

    /// The personality this layout was formatted with.
    pub fn personality(&self) -> Personality {
        self.personality
    }

    /// The boundary table.
    pub fn boundaries(&self) -> &TrackBoundaries {
        &self.boundaries
    }

    /// Total blocks.
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    /// Free blocks remaining.
    pub fn free_blocks(&self) -> u64 {
        self.free_count
    }

    /// Fraction of all blocks lost to exclusion (≈ 5 % on the Atlas 10K, 3 %
    /// on the 10K II, per §4.2.2).
    pub fn excluded_fraction(&self) -> f64 {
        self.excluded.iter().filter(|&&e| e).count() as f64 / self.blocks as f64
    }

    /// Where allocations have been placed so far.
    pub fn alloc_stats(&self) -> AllocStats {
        self.alloc_stats
    }

    /// Free-space fragmentation in `[0, 1]`: `1 − largest free run /
    /// free blocks`. A fully contiguous free pool scores 0; free space
    /// scattered in many small runs approaches 1. (Excluded blocks split
    /// runs, so a freshly formatted traxtent layout reports per-track
    /// granularity rather than 0.) Returns 0 on a full disk.
    pub fn fragmentation(&self) -> f64 {
        if self.free_count == 0 {
            return 0.0;
        }
        let mut largest = 0u64;
        let mut run = 0u64;
        for &f in &self.free {
            if f {
                run += 1;
                largest = largest.max(run);
            } else {
                run = 0;
            }
        }
        1.0 - largest as f64 / self.free_count as f64
    }

    /// Whether a block is excluded.
    pub fn is_excluded(&self, b: u64) -> bool {
        self.excluded[b as usize]
    }

    /// Whether a block is free.
    pub fn is_free(&self, b: u64) -> bool {
        self.free[b as usize]
    }

    /// First sector of a block.
    pub fn block_to_lbn(&self, b: u64) -> u64 {
        b * BLOCK_SECTORS
    }

    /// The block group a block belongs to.
    pub fn group_of(&self, b: u64) -> u64 {
        b / BLOCKS_PER_GROUP
    }

    /// Reserves the first block of every group for on-media metadata (the
    /// crash-consistency image format of [`crate::image`]), so data
    /// allocations never land where metadata writes go. Opt-in: the
    /// default timing-only figures never call this, keeping their layouts
    /// (and results) bit-identical. Idempotent; a metadata block that is
    /// already excluded or allocated is left as is (it is unavailable to
    /// data either way).
    pub fn reserve_group_metadata(&mut self) {
        let mut b = 0;
        while b < self.blocks {
            if self.free[b as usize] {
                self.take(b);
            }
            b += BLOCKS_PER_GROUP;
        }
    }

    /// Marks a block allocated.
    ///
    /// # Panics
    ///
    /// Panics if the block is not free.
    pub fn take(&mut self, b: u64) {
        assert!(self.free[b as usize], "block {b} is not free");
        self.free[b as usize] = false;
        self.free_count -= 1;
    }

    /// Releases a block.
    ///
    /// # Panics
    ///
    /// Panics if the block is already free or is excluded.
    pub fn release(&mut self, b: u64) {
        assert!(
            !self.excluded[b as usize],
            "excluded block {b} cannot be freed"
        );
        assert!(!self.free[b as usize], "block {b} is already free");
        self.free[b as usize] = true;
        self.free_count += 1;
    }

    /// Allocates the block for file offset following `prev` (FFS's
    /// "preferred block is the next sequential one"), falling back to the
    /// personality's placement policy. `run_hint` is how many further blocks
    /// the caller expects to write contiguously (bounded by the cluster
    /// size), which guides cluster selection.
    ///
    /// Returns `None` when the disk is full.
    pub fn alloc_next(&mut self, prev: Option<u64>, run_hint: u64) -> Option<u64> {
        if let Some(p) = prev {
            let preferred = p + 1;
            if preferred < self.blocks && self.free[preferred as usize] {
                self.alloc_stats.sequential += 1;
                self.take(preferred);
                return Some(preferred);
            }
            // Preferred block taken (or excluded): find the closest suitable
            // run. The traxtent personality jumps to the start of the
            // closest traxtent with room (§4.2.2); the others take the
            // closest free cluster big enough for the buffered data.
            let b = self.place_near(preferred.min(self.blocks - 1), run_hint)?;
            self.take(b);
            return Some(b);
        }
        // First block of a file: start of the closest suitable free run from
        // the beginning of the group rotation (block 0 heuristic stands in
        // for FFS's directory-based group choice).
        let b = self.place_near(0, run_hint)?;
        self.take(b);
        Some(b)
    }

    /// The personality's placement policy near `near`, counting whether the
    /// placement landed in a whole-traxtent run or fell back to the
    /// track-unaware closest-free-run search.
    fn place_near(&mut self, near: u64, run_hint: u64) -> Option<u64> {
        if self.personality == Personality::Traxtent {
            if let Some(b) = self.closest_traxtent_run(near, run_hint) {
                self.alloc_stats.track_aligned += 1;
                return Some(b);
            }
        }
        let b = self.closest_free_run(near, run_hint)?;
        self.alloc_stats.fallback += 1;
        Some(b)
    }

    /// Closest free run of at least `min(run_hint, 1)` blocks, scanning
    /// outward from `near`; degrades to the closest single free block.
    fn closest_free_run(&self, near: u64, run_hint: u64) -> Option<u64> {
        let want = run_hint.max(1);
        let mut best_single: Option<u64> = None;
        for dist in 0..self.blocks {
            for b in [near.checked_add(dist), near.checked_sub(dist)] {
                let Some(b) = b else { continue };
                if b >= self.blocks || !self.free[b as usize] {
                    continue;
                }
                if best_single.is_none() {
                    best_single = Some(b);
                }
                if self.run_len_at(b, want) >= want {
                    return Some(b);
                }
            }
            // Give up on finding a full run after a generous radius and take
            // any free block (an aged, fragmented disk).
            if dist > 8 * BLOCKS_PER_GROUP {
                if let Some(s) = best_single {
                    return Some(s);
                }
            }
        }
        best_single
    }

    /// Free-run length at `b`, capped at `cap`.
    fn run_len_at(&self, b: u64, cap: u64) -> u64 {
        let mut n = 0;
        while n < cap && b + n < self.blocks && self.free[(b + n) as usize] {
            n += 1;
        }
        n
    }

    /// The first free block of the closest traxtent (run of blocks between
    /// excluded blocks on one track) that has at least `run_hint` free
    /// blocks, scanning tracks outward from the track containing `near`.
    fn closest_traxtent_run(&self, near: u64, run_hint: u64) -> Option<u64> {
        let want = run_hint.max(1);
        let near_lbn = self.block_to_lbn(near).min(self.boundaries.capacity() - 1);
        let origin = self.boundaries.track_index(near_lbn);
        let n = self.boundaries.num_tracks();
        for k in 0..2 * n {
            let step = k / 2 + k % 2;
            let idx = if k % 2 == 0 {
                origin.checked_add(step)
            } else {
                origin.checked_sub(step)
            };
            let Some(idx) = idx else { continue };
            if idx >= n {
                continue;
            }
            if !self.trusted.is_empty() && !self.trusted[idx] {
                continue;
            }
            let t = self.boundaries.track_extent(idx);
            // Blocks fully inside this track.
            let first_block = t.start.div_ceil(BLOCK_SECTORS);
            let last_block = t.end() / BLOCK_SECTORS; // exclusive
            let mut b = first_block;
            while b < last_block.min(self.blocks) {
                if self.free[b as usize] {
                    let run = self.run_len_at(b, want);
                    if run >= want || (b + run == last_block && run > 0) {
                        return Some(b);
                    }
                    b += run.max(1);
                } else {
                    b += 1;
                }
            }
        }
        None
    }

    /// Length of the traxtent run starting at block `b`: contiguous blocks
    /// to the end of the track (exclusive of excluded blocks). Used to size
    /// traxtent reads and write-backs.
    pub fn traxtent_run(&self, b: u64) -> u64 {
        let lbn = self.block_to_lbn(b);
        let (_, track_end) = self.boundaries.track_bounds(lbn);
        let last_block = track_end / BLOCK_SECTORS; // exclusive
        last_block.saturating_sub(b).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boundaries() -> TrackBoundaries {
        // 100 tracks of 200 sectors: blocks are 16 sectors, so 12 whole
        // blocks fit per track and block 12 of each track straddles the
        // boundary (200 = 12*16 + 8).
        TrackBoundaries::uniform(400, 200)
    }

    fn layout(p: Personality) -> Layout {
        Layout::format(p, boundaries(), 400 * 200)
    }

    #[test]
    fn excluded_blocks_straddle_boundaries() {
        let l = layout(Personality::Traxtent);
        // Track 0 = sectors [0, 200): blocks 0..11 inside, block 12 spans
        // [192, 208) → excluded.
        assert!(!l.is_excluded(11));
        assert!(l.is_excluded(12));
        assert!(!l.is_excluded(13));
        // 200 sectors = 12.5 blocks per track, so every *other* track
        // boundary falls mid-block: one excluded block per 25 ≈ 4 %.
        assert!(
            !l.is_excluded(24),
            "track 1 ends exactly on a block boundary"
        );
        assert!(
            (0.03..=0.05).contains(&l.excluded_fraction()),
            "{}",
            l.excluded_fraction()
        );
    }

    #[test]
    fn untrusted_tracks_get_no_exclusions_and_no_aligned_placement() {
        // Tracks 0 and 1 fall below threshold; the rest are certain.
        let mut conf = vec![1.0; 400];
        conf[0] = 0.3;
        conf[1] = 0.5;
        let cb = ConfidentBoundaries::new(boundaries(), conf).unwrap();
        let l = Layout::format_confident(Personality::Traxtent, &cb, 0.9, 400 * 200);

        // Block 12 straddles track 0's boundary but that boundary is not
        // trusted, so it stays usable; track 2's straddler (block 37 spans
        // [592, 608) across the 600 boundary) is excluded as usual.
        assert!(!l.is_excluded(12));
        assert!(l.is_excluded(37));
        assert!(!l.block_trusted(0));
        assert!(l.block_trusted(30));
        assert!((l.trusted_fraction() - 398.0 / 400.0).abs() < 1e-12);

        // Track-aligned placement near the untrusted region jumps to the
        // first trusted track instead.
        let mut l = l;
        let b = l.alloc_next(None, 8).expect("space");
        let track = cb.table().track_index(b * BLOCK_SECTORS);
        assert!(track >= 2, "aligned placement used untrusted track {track}");
        let s = l.alloc_stats();
        assert_eq!(s.track_aligned, 1);
        assert_eq!(s.fallback, 0);
    }

    #[test]
    fn fully_untrusted_layout_behaves_untracked() {
        let cb = ConfidentBoundaries::new(boundaries(), vec![0.0; 400]).unwrap();
        let mut l = Layout::format_confident(Personality::Traxtent, &cb, 0.5, 400 * 200);
        assert_eq!(l.excluded_fraction(), 0.0);
        assert_eq!(l.trusted_fraction(), 0.0);
        // Every placement is a fallback: the aligned policy has nowhere
        // trusted to go.
        let a = l.alloc_next(None, 8).expect("space");
        l.alloc_next(Some(a), 8).expect("space");
        let s = l.alloc_stats();
        assert_eq!(s.track_aligned, 0);
        assert!(s.fallback + s.sequential == 2);
    }

    #[test]
    fn confident_format_with_certain_table_matches_plain_format() {
        let cb = ConfidentBoundaries::certain(boundaries());
        let confident = Layout::format_confident(Personality::Traxtent, &cb, 0.9, 400 * 200);
        let plain = Layout::format(Personality::Traxtent, boundaries(), 400 * 200);
        assert_eq!(confident.excluded_fraction(), plain.excluded_fraction());
        assert_eq!(confident.free_blocks(), plain.free_blocks());
        assert_eq!(confident.trusted_fraction(), 1.0);
    }

    #[test]
    fn unmodified_layout_has_no_exclusions() {
        let l = layout(Personality::Unmodified);
        assert_eq!(l.excluded_fraction(), 0.0);
        assert_eq!(l.free_blocks(), l.blocks());
    }

    #[test]
    fn sequential_allocation_prefers_next_block() {
        let mut l = layout(Personality::Unmodified);
        let a = l.alloc_next(None, 32).unwrap();
        let b = l.alloc_next(Some(a), 32).unwrap();
        assert_eq!(b, a + 1);
    }

    #[test]
    fn traxtent_allocation_skips_excluded() {
        let mut l = layout(Personality::Traxtent);
        let mut prev = None;
        let mut got = Vec::new();
        for _ in 0..14 {
            let b = l.alloc_next(prev, 14).unwrap();
            assert!(!l.is_excluded(b), "allocated excluded block {b}");
            prev = Some(b);
            got.push(b);
        }
        // Block 12 (the excluded one) is skipped.
        assert!(!got.contains(&12));
    }

    #[test]
    fn take_release_round_trip() {
        let mut l = layout(Personality::Unmodified);
        let before = l.free_blocks();
        l.take(100);
        assert!(!l.is_free(100));
        assert_eq!(l.free_blocks(), before - 1);
        l.release(100);
        assert!(l.is_free(100));
        assert_eq!(l.free_blocks(), before);
    }

    #[test]
    #[should_panic(expected = "not free")]
    fn double_take_panics() {
        let mut l = layout(Personality::Unmodified);
        l.take(5);
        l.take(5);
    }

    #[test]
    #[should_panic(expected = "excluded block")]
    fn releasing_excluded_block_panics() {
        let mut l = layout(Personality::Traxtent);
        l.release(12);
    }

    #[test]
    fn traxtent_run_measures_to_track_end() {
        let l = layout(Personality::Traxtent);
        assert_eq!(l.traxtent_run(0), 12);
        assert_eq!(l.traxtent_run(5), 7);
        assert_eq!(l.traxtent_run(11), 1);
    }

    #[test]
    fn allocation_exhausts_cleanly() {
        let tb = TrackBoundaries::uniform(260, 256); // 66560 sectors = 4160 blocks
        let mut l = Layout::format(Personality::Unmodified, tb, 260 * 256);
        let mut prev = None;
        let mut count = 0u64;
        while let Some(b) = l.alloc_next(prev, 8) {
            prev = Some(b);
            count += 1;
        }
        assert_eq!(count, 4160);
        assert_eq!(l.free_blocks(), 0);
    }

    #[test]
    fn alloc_stats_attribute_placements() {
        let mut l = layout(Personality::Traxtent);
        // First block has no predecessor: placed via the traxtent run
        // search. The next extends it sequentially.
        let a = l.alloc_next(None, 12).unwrap();
        let b = l.alloc_next(Some(a), 12).unwrap();
        assert_eq!(b, a + 1);
        let s = l.alloc_stats();
        assert_eq!(s.sequential, 1);
        assert_eq!(s.track_aligned, 1);
        assert_eq!(s.fallback, 0);

        // An unmodified layout never uses the traxtent search.
        let mut u = layout(Personality::Unmodified);
        let a = u.alloc_next(None, 12).unwrap();
        u.alloc_next(Some(a), 12).unwrap();
        let s = u.alloc_stats();
        assert_eq!(s.sequential, 1);
        assert_eq!(s.track_aligned, 0);
        assert_eq!(s.fallback, 1);
    }

    #[test]
    fn metadata_reservation_pins_group_heads() {
        let mut l = layout(Personality::Unmodified);
        let before = l.free_blocks();
        l.reserve_group_metadata();
        let groups = l.blocks().div_ceil(BLOCKS_PER_GROUP);
        assert_eq!(l.free_blocks(), before - groups);
        let mut b = 0;
        while b < l.blocks() {
            assert!(!l.is_free(b), "metadata block {b} still free");
            b += BLOCKS_PER_GROUP;
        }
        // Idempotent, and allocations skip the reserved heads.
        l.reserve_group_metadata();
        assert_eq!(l.free_blocks(), before - groups);
        let a = l.alloc_next(None, 4).expect("space");
        assert_ne!(a, 0);
    }

    #[test]
    fn fragmentation_rises_as_free_space_scatters() {
        let mut l = layout(Personality::Unmodified);
        assert_eq!(l.fragmentation(), 0.0, "pristine layout is one free run");
        // Punch holes: taking every 8th block caps the largest free run at 7
        // while leaving most blocks free.
        let mut b = 0;
        while b < l.blocks() {
            l.take(b);
            b += 8;
        }
        let frag = l.fragmentation();
        assert!(frag > 0.9, "scattered free space is fragmented: {frag}");
        // Full layout: no free blocks at all, defined as unfragmented.
        let mut full = layout(Personality::Unmodified);
        let mut prev = None;
        while let Some(nb) = full.alloc_next(prev, 8) {
            prev = Some(nb);
        }
        assert_eq!(full.fragmentation(), 0.0);
    }
}
