//! Cross-crate integration tests: the full pipeline from disk model through
//! extraction, file system, and the application-level results the paper
//! reports.

use dixtrac::{extract_general, extract_scsi, GeneralConfig};
use ffs::{FileSystem, Personality};
use scsi::ScsiDisk;
use sim_disk::defects::{DefectPolicy, SpareScheme};
use sim_disk::disk::Disk;
use sim_disk::models;
use traxtent::{RequestPlanner, TrackBoundaries, TraxtentAllocator};
use workloads::apps;
use workloads::microbench::{run_random_io, Alignment, QueueDepth, RandomIoSpec};

const MB: u64 = 1 << 20;

fn ground_truth(disk: &Disk) -> TrackBoundaries {
    TrackBoundaries::new(
        disk.geometry()
            .iter_tracks()
            .filter(|(_, t)| t.lbn_count() > 0)
            .map(|(_, t)| t.first_lbn())
            .collect(),
        disk.geometry().capacity_lbns(),
    )
    .expect("geometry yields a valid table")
}

/// Both extraction algorithms agree with each other and the geometry on a
/// drive with spares and slipped defects, and the extracted table drives
/// the allocator and planner without violating track-locality.
#[test]
fn extract_then_allocate_then_plan() {
    let cfg = models::with_factory_defects(
        models::small_test_disk(),
        SpareScheme::SectorsPerCylinder(8),
        DefectPolicy::Slip,
        500,
        3,
    );
    let truth = ground_truth(&Disk::new(cfg.clone()));

    let mut s = ScsiDisk::new(Disk::new(cfg.clone()));
    let scsi_result = extract_scsi(&mut s).expect("extraction succeeds");
    assert_eq!(scsi_result.boundaries, truth);

    let mut s = ScsiDisk::new(Disk::new(cfg));
    let general = extract_general(
        &mut s,
        &GeneralConfig {
            contexts: 16,
            ..GeneralConfig::default()
        },
    )
    .expect("extraction succeeds");
    assert_eq!(general.boundaries, truth);

    // Allocate mid-size extents and plan requests: nothing crosses a track.
    let mut alloc = TraxtentAllocator::new(scsi_result.boundaries.clone());
    let planner = RequestPlanner::new(scsi_result.boundaries);
    for i in 0..50 {
        let e = alloc
            .alloc_within_track(64, i * 1009)
            .expect("space available");
        assert!(
            planner.is_track_local(e.start, e.len),
            "{e} crosses a track"
        );
    }
}

/// The headline §5.2 result holds end to end: track-aligned track-sized
/// reads with queueing are ≈ 45–50 % more efficient than unaligned ones.
#[test]
fn aligned_access_wins_at_track_size() {
    let mut disk = Disk::new(models::quantum_atlas_10k_ii());
    let run = |disk: &mut Disk, alignment| {
        let spec = RandomIoSpec {
            count: 800,
            ..RandomIoSpec::reads(528, alignment, QueueDepth::Two)
        };
        run_random_io(disk, &spec).efficiency(QueueDepth::Two)
    };
    let aligned = run(&mut disk, Alignment::TrackAligned);
    let unaligned = run(&mut disk, Alignment::Unaligned);
    let gain = aligned / unaligned - 1.0;
    assert!(
        (0.30..=0.65).contains(&gain),
        "efficiency gain {gain:.2} out of the paper's range (aligned {aligned:.2}, unaligned {unaligned:.2})"
    );
}

/// Zero-latency firmware is what converts alignment into a big win; disks
/// without it (Cheetah X15) only save the head switch (§5.2).
#[test]
fn non_zero_latency_disks_gain_little() {
    let mut disk = Disk::new(models::seagate_cheetah_x15());
    let spt = disk.geometry().track(0).lbn_count() as u64;
    let run = |disk: &mut Disk, alignment| {
        let spec = RandomIoSpec {
            count: 600,
            ..RandomIoSpec::reads(spt, alignment, QueueDepth::One)
        };
        run_random_io(disk, &spec)
            .mean_head_time(QueueDepth::One)
            .as_millis_f64()
    };
    let aligned = run(&mut disk, Alignment::TrackAligned);
    let unaligned = run(&mut disk, Alignment::Unaligned);
    let reduction = 1.0 - aligned / unaligned;
    assert!(
        (0.02..=0.20).contains(&reduction),
        "head-time reduction {reduction:.2} should be small without zero-latency support"
    );
}

/// Table 2's directional results on a scaled workload: traxtents lose a
/// little on single-stream scans, win on interleaved streams, and pay on
/// head*.
#[test]
fn ffs_personalities_match_table2_directions() {
    let fresh = |p| FileSystem::format(Disk::new(models::quantum_atlas_10k()), p);

    let scan_u = apps::scan(&mut fresh(Personality::Unmodified), 64 * MB, 64 * 1024);
    let scan_t = apps::scan(&mut fresh(Personality::Traxtent), 64 * MB, 64 * 1024);
    let scan_ratio = scan_t.elapsed.as_secs_f64() / scan_u.elapsed.as_secs_f64();
    assert!(
        (1.0..=1.12).contains(&scan_ratio),
        "scan ratio {scan_ratio}"
    );

    let diff_u = apps::diff(&mut fresh(Personality::Unmodified), 32 * MB, 64 * 1024);
    let diff_t = apps::diff(&mut fresh(Personality::Traxtent), 32 * MB, 64 * 1024);
    let diff_gain = diff_u.elapsed.as_secs_f64() / diff_t.elapsed.as_secs_f64();
    assert!(diff_gain > 1.10, "diff gain {diff_gain}");

    let head_u = apps::head_star(&mut fresh(Personality::Unmodified), 100, 200 * 1024);
    let head_t = apps::head_star(&mut fresh(Personality::Traxtent), 100, 200 * 1024);
    assert!(
        head_t.elapsed > head_u.elapsed,
        "head* must be the traxtent worst case"
    );
}

/// Graceful degradation end to end: a drive that refuses diagnostics is
/// extracted by the timing fallback; regions whose confidence falls below
/// threshold are served untracked by both the extent allocator and the
/// traxtent FFS, while trusted regions keep aligned placement.
#[test]
fn low_confidence_extraction_degrades_to_untracked_allocation() {
    // Fallback extraction on a diagnostics-refusing, transiently-faulty
    // drive still recovers the exact table, with per-track confidence.
    let mut cfg = models::small_test_disk();
    cfg.fault.diagnostics_unsupported = true;
    cfg.fault.transient_per_million = 10_000;
    cfg.fault.seed = 0xdecade;
    let truth = ground_truth(&Disk::new(cfg.clone()));
    let mut s = ScsiDisk::new(Disk::new(cfg));
    let auto = dixtrac::extract_auto(
        &mut s,
        &dixtrac::GeneralConfig {
            contexts: 16,
            votes: 3,
            ..dixtrac::GeneralConfig::default()
        },
    )
    .expect("fallback extraction succeeds");
    assert_eq!(auto.method, dixtrac::ExtractionMethod::GeneralFallback);
    assert_eq!(auto.boundaries.table(), &truth);

    // Simulate a noisier run: mark a band of tracks low-confidence (the
    // extraction above is too clean to produce any on its own).
    let n = truth.num_tracks();
    let mut conf = auto.boundaries.confidence().to_vec();
    let weak: Vec<usize> = (n / 3..n / 2).collect();
    for &i in &weak {
        conf[i] = 0.4;
    }
    let degraded = traxtent::ConfidentBoundaries::new(truth.clone(), conf).expect("valid");

    // The extent allocator never hands out aligned space on weak tracks.
    let mut alloc = TraxtentAllocator::with_confidence(&degraded, 0.75);
    assert_eq!(alloc.untrusted_tracks(), weak.len());
    let weak_mid = truth.track_extent(weak[weak.len() / 2]).start;
    for _ in 0..8 {
        let e = alloc.alloc_traxtent(weak_mid).expect("trusted space left");
        let idx = truth.track_index(e.start);
        assert!(!weak.contains(&idx), "aligned alloc on weak track {idx}");
    }
    // The untracked fallback still serves the weak region itself.
    let e = alloc.alloc_near(64, weak_mid).expect("space");
    assert_eq!(truth.track_index(e.start), weak[weak.len() / 2]);
}

/// The traxtent FFS on a partially-trusted table keeps working, excludes
/// no blocks on weak tracks, and places via the untracked fallback there.
#[test]
fn confident_ffs_reverts_to_untracked_placement_on_weak_tracks() {
    let disk = Disk::new(models::quantum_atlas_10k());
    let truth = ground_truth(&disk);
    let n = truth.num_tracks();
    // First half of the disk untrusted, second half certain.
    let conf: Vec<f64> = (0..n).map(|i| if i < n / 2 { 0.5 } else { 1.0 }).collect();
    let cb = traxtent::ConfidentBoundaries::new(truth.clone(), conf).expect("valid");
    let mut fs = FileSystem::format_confident(disk, Personality::Traxtent, &cb, 0.9);

    // Writing files works and the system stays consistent.
    let scan = apps::scan(&mut fs, 16 * MB, 64 * 1024);
    assert!(scan.elapsed.as_secs_f64() > 0.0);
    let stats = fs.layout().alloc_stats();
    // Aligned placements only ever target the trusted half; with half the
    // disk untrusted the trusted fraction reflects that.
    assert!((fs.layout().trusted_fraction() - 0.5).abs() < 0.01);
    assert!(stats.sequential + stats.track_aligned + stats.fallback > 0);

    // A fully untrusted table degrades to untracked behaviour wholesale:
    // no exclusions, no aligned placements — yet everything still runs.
    let disk = Disk::new(models::quantum_atlas_10k());
    let cb = traxtent::ConfidentBoundaries::new(truth.clone(), vec![0.0; n]).expect("valid");
    let mut fs = FileSystem::format_confident(disk, Personality::Traxtent, &cb, 0.5);
    assert_eq!(fs.layout().excluded_fraction(), 0.0);
    let _ = apps::scan(&mut fs, 16 * MB, 64 * 1024);
    assert_eq!(fs.layout().alloc_stats().track_aligned, 0);
}

/// Grown defects change boundaries only locally: after remapping one LBN,
/// re-extraction differs from the old table in at most a few tracks.
#[test]
fn grown_defect_changes_little() {
    let mut disk = Disk::new(models::with_factory_defects(
        models::small_test_disk(),
        SpareScheme::SectorsPerCylinder(8),
        DefectPolicy::Slip,
        200,
        5,
    ));
    let before = ground_truth(&disk);
    disk.geometry_mut()
        .add_grown_defect(12_345)
        .expect("spare available");
    let after = ground_truth(&disk);
    // Slip-mapped boundaries are untouched by a remap-style grown defect.
    assert_eq!(before, after);
}

/// The LFS economics close the loop: overall write cost at the track size
/// is lower with aligned segments.
#[test]
fn lfs_prefers_track_sized_aligned_segments() {
    let cfg = models::quantum_atlas_10k_ii();
    let track = cfg.geometry.track(0).lbn_count() as u64;
    let ti_aligned = lfs::transfer_inefficiency(&cfg, track, true, 150, 1);
    let ti_unaligned = lfs::transfer_inefficiency(&cfg, track, false, 150, 1);
    assert!(ti_aligned < ti_unaligned);
    let wc =
        lfs::cleaner::write_cost_fixed(1 << 16, track, 1 << 17, lfs::cleaner::LfsConfig::default());
    assert!(wc >= 1.0);
    assert!(wc * ti_aligned < wc * ti_unaligned);
}
